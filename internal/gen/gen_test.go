package gen_test

import (
	"os"
	"strings"
	"testing"

	"repro/internal/gen"
)

// TestGoldenMinirel regenerates the checked-in minirel optimizer from
// its specification and requires byte equality: the generated package
// in internal/gen/minirel is exactly what volcano-gen emits.
func TestGoldenMinirel(t *testing.T) {
	specSrc, err := os.ReadFile("testdata/minirel.model")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := gen.Parse(string(specSrc))
	if err != nil {
		t.Fatal(err)
	}
	got, err := gen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("minirel/minirel.go")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("generated output differs from checked-in minirel/minirel.go; " +
			"run: go run ./cmd/volcano-gen -spec internal/gen/testdata/minirel.model -o internal/gen/minirel/minirel.go")
	}
}

func TestParseSpecStructure(t *testing.T) {
	specSrc, err := os.ReadFile("testdata/minirel.model")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := gen.Parse(string(specSrc))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Model != "minirel" {
		t.Errorf("model = %q", spec.Model)
	}
	if len(spec.Operators) != 3 || len(spec.Transforms) != 2 ||
		len(spec.Algorithms) != 4 || len(spec.Enforcers) != 1 {
		t.Errorf("counts: ops=%d transforms=%d algs=%d enfs=%d",
			len(spec.Operators), len(spec.Transforms), len(spec.Algorithms), len(spec.Enforcers))
	}
	assoc := spec.Transforms[1]
	if assoc.Name != "join_assoc" || assoc.Condition != "assocValid" {
		t.Errorf("assoc = %+v", assoc)
	}
	if assoc.Pattern.Children[0].Label != "inner" {
		t.Errorf("inner label = %q", assoc.Pattern.Children[0].Label)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no model":          "operator GET 0;",
		"unknown op":        "model m; operator GET 0; transform t: FOO(?a) -> FOO:x(?a);",
		"bad arity":         "model m; operator GET 0; transform t: GET(?a) -> GET;",
		"unbound var":       "model m; operator S 1; transform t: S:s(?a) -> S:s(?b);",
		"unlabeled subst":   "model m; operator S 1; transform t: S(?a) -> S(?a);",
		"wrong label kind":  "model m; operator S 1; operator T 1; transform t: S:x(T:y(?a)) -> T:x(?a);",
		"missing cost":      "model m; operator GET 0; algorithm SCAN implements GET;",
		"enforcer no relax": "model m; operator GET 0; algorithm SCAN implements GET cost c; enforcer E cost c2;",
		"dup operator":      "model m; operator GET 0; operator GET 0;",
		"var bound twice":   "model m; operator J 2; transform t: J:j(?a, ?a) -> J:j(?a, ?a);",
		"trailing garbage":  "model m extra;",
		"bad char":          "model m; operator GET 0 @;",
	}
	for name, src := range cases {
		if _, err := gen.Parse(src); err == nil {
			t.Errorf("%s: Parse succeeded, want error", name)
		}
	}
}

func TestGenerateConflictingSignature(t *testing.T) {
	src := `model m; operator GET 0; operator S 1;
	algorithm SCAN implements GET cost f;
	algorithm FILT implements S(?x) cost c applicability f;`
	spec, err := gen.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gen.Generate(spec); err == nil {
		t.Fatal("Generate succeeded with a name used at two signatures")
	}
}

// TestRelationalSpecParsesAndGenerates: the full relational model's
// specification (the DSL documentation of internal/relopt) parses,
// validates, and generates compilable-shaped source.
func TestRelationalSpecParsesAndGenerates(t *testing.T) {
	src, err := os.ReadFile("testdata/relational.model")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := gen.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Operators) != 7 || len(spec.Transforms) != 8 ||
		len(spec.Algorithms) != 14 || len(spec.Enforcers) != 2 {
		t.Fatalf("counts: ops=%d transforms=%d algs=%d enfs=%d",
			len(spec.Operators), len(spec.Transforms), len(spec.Algorithms), len(spec.Enforcers))
	}
	out, err := gen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"package relational",
		"KindGET core.OpKind = iota + 1",
		"MERGE_JOIN_PROJECT",      // multi-operator pattern present
		"if s.PredInLeft(ctx, b)", // guarded multi-substitute rule
		"Relax:   s.ExchangeRelax,",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("generated source missing %q", want)
		}
	}
}

// TestMultiSubstituteTransform: a rule with guarded alternatives emits
// one append per substitute, guarded by its condition.
func TestMultiSubstituteTransform(t *testing.T) {
	src := `model m; operator S 1; operator J 2;
	transform push: S:s(J:j(?l, ?r))
	    -> J:j(S:s(?l), ?r) when inLeft
	     | J:j(?l, S:s(?r)) when inRight;
	algorithm A implements S(?x) cost c;`
	spec, err := gen.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Transforms[0].Substs) != 2 {
		t.Fatalf("substs = %d, want 2", len(spec.Transforms[0].Substs))
	}
	out, err := gen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"if s.InLeft(ctx, b)", "if s.InRight(ctx, b)", "var out []*core.ExprTree"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("generated source missing %q", want)
		}
	}
}
