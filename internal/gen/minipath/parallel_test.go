package minipath_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen/minipath"
	"repro/internal/oodb"
)

// TestParallelSearchMatchesSequential: the task engine over the OODB
// path model — materialize chains with selections and assembledness
// requirements — must price plans exactly as the sequential engine does
// at every worker count.
func TestParallelSearchMatchesSequential(t *testing.T) {
	cat := schema()
	m := oodb.New(cat, oodb.DefaultParams())
	generated := minipath.New(m)

	steps := []string{"dept", "division", "company"}
	for k := 0; k <= 3; k++ {
		for _, withSelect := range []bool{false, true} {
			for _, required := range []core.PhysProps{nil, oodb.Assembled} {
				tree := func() *core.ExprTree {
					q := core.Node(&oodb.GetSet{Cls: cat.Class("Emp")})
					if withSelect {
						q = core.Node(&oodb.Select{Attr: "age", Op: oodb.CmpGT, Val: 40}, q)
					}
					for _, s := range steps[:k] {
						q = core.Node(&oodb.Materialize{Attr: s}, q)
					}
					return q
				}

				seqOpt := core.NewOptimizer(generated, nil)
				seqPlan, err := seqOpt.Optimize(seqOpt.InsertQuery(tree()), required)
				if err != nil || seqPlan == nil {
					t.Fatalf("k=%d sel=%v sequential: plan=%v err=%v", k, withSelect, seqPlan, err)
				}

				for _, workers := range []int{2, 4, 8} {
					opts := &core.Options{}
					opts.Search.Workers = workers
					parOpt := core.NewOptimizer(generated, opts)
					parPlan, err := parOpt.Optimize(parOpt.InsertQuery(tree()), required)
					if err != nil || parPlan == nil {
						t.Fatalf("k=%d sel=%v workers=%d: plan=%v err=%v", k, withSelect, workers, parPlan, err)
					}
					if parPlan.Cost.(oodb.Cost) != seqPlan.Cost.(oodb.Cost) {
						t.Errorf("k=%d sel=%v req=%v workers=%d: cost %s, sequential %s",
							k, withSelect, required, workers, parPlan.Cost, seqPlan.Cost)
					}
				}
			}
		}
	}
}
