package minipath_test

import (
	"strings"
	"testing"

	"os"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/gen/minipath"
	"repro/internal/oodb"
)

// schema builds the standard 4-class test schema.
func schema() *oodb.Catalog {
	cat := oodb.NewCatalog()
	company := cat.AddClass("Company", 10, 400)
	division := cat.AddClass("Division", 100, 300)
	dept := cat.AddClass("Dept", 1000, 200)
	emp := cat.AddClass("Emp", 10000, 150)
	cat.AddScalar(emp, "age", 50)
	cat.AddScalar(emp, "salary", 1000)
	cat.AddRef(emp, "dept", dept)
	cat.AddRef(dept, "division", division)
	cat.AddRef(division, "company", company)
	return cat
}

// TestModelImplementsGeneratedSupport: the hand-maintained oodb.Model is
// itself the Support implementation of the generated package — one
// implementation behind both wirings.
func TestModelImplementsGeneratedSupport(t *testing.T) {
	var _ minipath.Support = oodb.New(schema(), oodb.DefaultParams())
}

// TestGeneratedMatchesHandWired: for path queries of every length, with
// and without selections and assembledness requirements, the generated
// minipath optimizer and the hand-wired oodb model produce identically
// priced plans.
func TestGeneratedMatchesHandWired(t *testing.T) {
	cat := schema()
	m := oodb.New(cat, oodb.DefaultParams())
	generated := minipath.New(m)

	steps := []string{"dept", "division", "company"}
	for k := 0; k <= 3; k++ {
		for _, withSelect := range []bool{false, true} {
			for _, required := range []core.PhysProps{nil, oodb.Assembled} {
				tree := func() *core.ExprTree {
					q := core.Node(&oodb.GetSet{Cls: cat.Class("Emp")})
					if withSelect {
						q = core.Node(&oodb.Select{Attr: "age", Op: oodb.CmpGT, Val: 40}, q)
					}
					for _, s := range steps[:k] {
						q = core.Node(&oodb.Materialize{Attr: s}, q)
					}
					return q
				}

				genOpt := core.NewOptimizer(generated, nil)
				gPlan, err := genOpt.Optimize(genOpt.InsertQuery(tree()), required)
				if err != nil || gPlan == nil {
					t.Fatalf("k=%d sel=%v generated: plan=%v err=%v", k, withSelect, gPlan, err)
				}

				handOpt := core.NewOptimizer(m, nil)
				hPlan, err := handOpt.Optimize(handOpt.InsertQuery(tree()), required)
				if err != nil || hPlan == nil {
					t.Fatalf("k=%d sel=%v hand: plan=%v err=%v", k, withSelect, hPlan, err)
				}

				if gPlan.Cost.(oodb.Cost) != hPlan.Cost.(oodb.Cost) {
					t.Errorf("k=%d sel=%v req=%v: generated %s != hand %s\ngenerated:\n%s\nhand:\n%s",
						k, withSelect, required, gPlan.Cost, hPlan.Cost, gPlan.Format(), hPlan.Format())
				}
			}
		}
	}
}

// TestSelectCommuteGenerated: the generated transformation rule explores
// both selection orders.
func TestSelectCommuteGenerated(t *testing.T) {
	cat := schema()
	m := oodb.New(cat, oodb.DefaultParams())
	opt := core.NewOptimizer(minipath.New(m), nil)
	tree := core.Node(&oodb.Select{Attr: "age", Op: oodb.CmpGT, Val: 30},
		core.Node(&oodb.Select{Attr: "salary", Op: oodb.CmpEQ, Val: 10},
			core.Node(&oodb.GetSet{Cls: cat.Class("Emp")})))
	root := opt.InsertQuery(tree)
	if err := opt.Explore(root); err != nil {
		t.Fatal(err)
	}
	if got := len(opt.Memo().Group(root).Exprs()); got != 2 {
		t.Fatalf("root exprs = %d, want 2", got)
	}
}

// TestGoldenMinipath pins the checked-in generated package to its
// specification.
func TestGoldenMinipath(t *testing.T) {
	specSrc, err := os.ReadFile("../testdata/minipath.model")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := gen.Parse(string(specSrc))
	if err != nil {
		t.Fatal(err)
	}
	got, err := gen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("minipath.go")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("generated output differs from checked-in minipath.go; regenerate with volcano-gen")
	}
	// The generated kinds must match the hand-assigned ones, since both
	// wirings consume the same operator types.
	if !strings.Contains(string(got), "KindGETSET core.OpKind = iota + 1") {
		t.Fatal("generated kinds do not start at 1")
	}
}
