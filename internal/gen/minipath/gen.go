//go:generate go run repro/cmd/volcano-gen -spec ../testdata/minipath.model -o minipath.go

// Package minipath is regenerated from testdata/minipath.model; see
// minipath.go.
package minipath
