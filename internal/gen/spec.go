// Package gen is the optimizer generator proper: it translates a data
// model specification — logical operators, transformation rules,
// algorithms with implementation rules, and enforcers — into Go source
// code for an optimizer package that links against the search engine in
// internal/core, following the paper's generator paradigm (Figure 1):
//
//	model specification → optimizer generator → optimizer source code
//	                                          → compiler & linker → query optimizer
//
// Support functions (cost functions, applicability functions, condition
// code, property functions) are written by the optimizer implementor;
// the generated package declares them as a Support interface and wires
// the rules. Transformation rule application code is generated entirely
// from the pattern and substitute: operator instances are reused through
// pattern labels, so no operator constructors are required.
package gen

import "fmt"

// Spec is a parsed model specification.
type Spec struct {
	// Model is the model (and generated package) name.
	Model string
	// Operators are the logical operators in declaration order; their
	// kinds are assigned from this order.
	Operators []Operator
	// Transforms are the transformation rules.
	Transforms []Transform
	// Algorithms are the implementation rules.
	Algorithms []Algorithm
	// Enforcers are the property enforcers.
	Enforcers []EnforcerDecl
}

// Operator declares one logical operator.
type Operator struct {
	// Name is the operator name (conventionally upper case).
	Name string
	// Arity is the number of inputs.
	Arity int
}

// PatNode is a node of a rule pattern or substitute: either an operator
// (possibly labeled) over sub-patterns, or a ?variable binding an
// equivalence class.
type PatNode struct {
	// Var is the variable name for leaf nodes ("a" for ?a).
	Var string
	// Op is the operator name for operator nodes.
	Op string
	// Label names this operator occurrence so substitutes can reuse
	// the matched instance ("top" in JOIN:top).
	Label string
	// Children are the sub-patterns.
	Children []*PatNode
}

// IsVar reports whether the node is a variable leaf.
func (n *PatNode) IsVar() bool { return n.Var != "" }

// Subst is one substitute of a transformation rule with its optional
// guard.
type Subst struct {
	// Node is the equivalent shape produced.
	Node *PatNode
	// Condition optionally names condition code guarding this
	// substitute alone.
	Condition string
}

// Transform is one transformation rule declaration. A rule may list
// several alternative substitutes (separated by | in the specification),
// each individually guarded — selection pushdown, for example, produces
// a left- or right-pushed shape depending on schema membership.
type Transform struct {
	// Name identifies the rule.
	Name string
	// Pattern is the matched shape.
	Pattern *PatNode
	// Substs are the equivalent shapes produced.
	Substs []Subst
	// Condition optionally names condition code guarding the whole
	// rule.
	Condition string
	// Promise orders moves.
	Promise int
}

// Algorithm is one implementation rule declaration.
type Algorithm struct {
	// Name is the physical algorithm name.
	Name string
	// Pattern is the logical shape the algorithm implements; it may
	// span multiple operators.
	Pattern *PatNode
	// Cost names the required cost function.
	Cost string
	// Applicability optionally names the applicability function; when
	// empty the algorithm qualifies only for the vacuous property
	// vector, with vacuous input requirements.
	Applicability string
	// Build optionally names the physical-operator constructor; when
	// empty a default operator struct is generated.
	Build string
	// Delivered optionally names the delivered-properties function.
	Delivered string
	// Condition optionally names condition code.
	Condition string
	// Promise orders moves.
	Promise int
}

// EnforcerDecl is one enforcer declaration.
type EnforcerDecl struct {
	// Name is the enforcer name.
	Name string
	// Relax names the required relax function.
	Relax string
	// Cost names the required cost function.
	Cost string
	// Build optionally names the constructor; when empty a default
	// operator struct is generated.
	Build string
	// Delivered optionally names the delivered-properties function.
	Delivered string
	// Promise orders moves.
	Promise int
}

// opByName returns the declared operator, or an error.
func (s *Spec) opByName(name string) (Operator, error) {
	for _, op := range s.Operators {
		if op.Name == name {
			return op, nil
		}
	}
	return Operator{}, fmt.Errorf("gen: unknown operator %q", name)
}

// validate checks arities, labels, and variable binding.
func (s *Spec) validate() error {
	if s.Model == "" {
		return fmt.Errorf("gen: missing model declaration")
	}
	if len(s.Operators) == 0 {
		return fmt.Errorf("gen: no operators declared")
	}
	seen := map[string]bool{}
	for _, op := range s.Operators {
		if seen[op.Name] {
			return fmt.Errorf("gen: duplicate operator %q", op.Name)
		}
		seen[op.Name] = true
	}
	for _, tr := range s.Transforms {
		labels := map[string]string{} // label -> operator name
		vars := map[string]bool{}
		if err := s.checkPattern(tr.Pattern, labels, vars, true); err != nil {
			return fmt.Errorf("gen: transform %s: %w", tr.Name, err)
		}
		if len(tr.Substs) == 0 {
			return fmt.Errorf("gen: transform %s: no substitutes", tr.Name)
		}
		for _, sub := range tr.Substs {
			if err := s.checkSubst(sub.Node, labels, vars); err != nil {
				return fmt.Errorf("gen: transform %s: %w", tr.Name, err)
			}
		}
	}
	for _, alg := range s.Algorithms {
		labels := map[string]string{}
		vars := map[string]bool{}
		if err := s.checkPattern(alg.Pattern, labels, vars, true); err != nil {
			return fmt.Errorf("gen: algorithm %s: %w", alg.Name, err)
		}
		if alg.Cost == "" {
			return fmt.Errorf("gen: algorithm %s: missing cost function", alg.Name)
		}
	}
	for _, enf := range s.Enforcers {
		if enf.Relax == "" || enf.Cost == "" {
			return fmt.Errorf("gen: enforcer %s: relax and cost functions are required", enf.Name)
		}
	}
	return nil
}

// checkPattern validates a pattern tree and records labels and vars.
func (s *Spec) checkPattern(n *PatNode, labels map[string]string, vars map[string]bool, top bool) error {
	if n.IsVar() {
		if top {
			return fmt.Errorf("pattern root must be an operator")
		}
		if vars[n.Var] {
			return fmt.Errorf("variable ?%s bound twice", n.Var)
		}
		vars[n.Var] = true
		return nil
	}
	op, err := s.opByName(n.Op)
	if err != nil {
		return err
	}
	if len(n.Children) != op.Arity {
		return fmt.Errorf("operator %s has arity %d, pattern supplies %d inputs",
			n.Op, op.Arity, len(n.Children))
	}
	if n.Label != "" {
		if _, dup := labels[n.Label]; dup {
			return fmt.Errorf("duplicate label %q", n.Label)
		}
		labels[n.Label] = n.Op
	}
	for _, c := range n.Children {
		if err := s.checkPattern(c, labels, vars, false); err != nil {
			return err
		}
	}
	return nil
}

// checkSubst validates a substitute: every variable must be bound by the
// pattern and every operator occurrence must reuse a pattern label of
// the same operator.
func (s *Spec) checkSubst(n *PatNode, labels map[string]string, vars map[string]bool) error {
	if n.IsVar() {
		if !vars[n.Var] {
			return fmt.Errorf("substitute uses unbound variable ?%s", n.Var)
		}
		return nil
	}
	label := n.Label
	if label == "" {
		return fmt.Errorf("substitute operator %s needs a label reusing a matched instance", n.Op)
	}
	opName, ok := labels[label]
	if !ok {
		return fmt.Errorf("substitute label %q not bound in pattern", label)
	}
	if opName != n.Op {
		return fmt.Errorf("substitute label %q is a %s in the pattern, used as %s", label, opName, n.Op)
	}
	op, err := s.opByName(n.Op)
	if err != nil {
		return err
	}
	if len(n.Children) != op.Arity {
		return fmt.Errorf("operator %s has arity %d, substitute supplies %d inputs",
			n.Op, op.Arity, len(n.Children))
	}
	for _, c := range n.Children {
		if err := s.checkSubst(c, labels, vars); err != nil {
			return err
		}
	}
	return nil
}
