package pairs_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gen/pairs"
)

// deepPairTree builds PAIR(...PAIR(PAIR(a,b),c)...) over n leaves.
func deepPairTree(n int) *core.ExprTree {
	t := core.Node(&leafOp{name: "l0"})
	for i := 1; i < n; i++ {
		t = core.Node(&pairOp{}, t, core.Node(&leafOp{name: string(rune('a' + i))}))
	}
	return t
}

// TestParallelSearchMatchesSequential: the task engine over the
// generated pairs model (default operators, paint enforcer) must match
// the sequential engine's plan cost at every worker count, with and
// without a color requirement.
func TestParallelSearchMatchesSequential(t *testing.T) {
	model := pairs.New(sup{})
	for _, n := range []int{3, 5, 7} {
		for _, required := range []core.PhysProps{nil, pcolor(2)} {
			seqOpt := core.NewOptimizer(model, nil)
			seqPlan, err := seqOpt.Optimize(seqOpt.InsertQuery(deepPairTree(n)), required)
			if err != nil || seqPlan == nil {
				t.Fatalf("n=%d sequential: plan=%v err=%v", n, seqPlan, err)
			}
			for _, workers := range []int{2, 4, 8} {
				opts := &core.Options{}
				opts.Search.Workers = workers
				parOpt := core.NewOptimizer(model, opts)
				parPlan, err := parOpt.Optimize(parOpt.InsertQuery(deepPairTree(n)), required)
				if err != nil || parPlan == nil {
					t.Fatalf("n=%d workers=%d: plan=%v err=%v", n, workers, parPlan, err)
				}
				if parPlan.Cost.(pcost) != seqPlan.Cost.(pcost) {
					t.Errorf("n=%d req=%v workers=%d: cost %v, sequential %v",
						n, required, workers, parPlan.Cost, seqPlan.Cost)
				}
			}
		}
	}
}
