//go:generate go run repro/cmd/volcano-gen -spec ../testdata/pairs.model -o pairs.go

// Package pairs is regenerated from testdata/pairs.model; see pairs.go.
package pairs
