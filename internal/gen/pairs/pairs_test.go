package pairs_test

import (
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/gen/pairs"
)

// pcost is a one-number cost ADT for the pairs model.
type pcost float64

func (c pcost) Add(o core.Cost) core.Cost { return c + o.(pcost) }
func (c pcost) Sub(o core.Cost) core.Cost { return c - o.(pcost) }
func (c pcost) Less(o core.Cost) bool     { return c < o.(pcost) }
func (c pcost) String() string            { return fmt.Sprintf("%.0f", float64(c)) }

// pcolor is the property vector: 0 = none.
type pcolor int

func (c pcolor) Equal(o core.PhysProps) bool  { return c == o.(pcolor) }
func (c pcolor) Covers(o core.PhysProps) bool { return o.(pcolor) == 0 || c == o.(pcolor) }
func (c pcolor) Hash() uint64                 { return uint64(c) }
func (c pcolor) String() string {
	if c == 0 {
		return ""
	}
	return fmt.Sprintf("paint%d", int(c))
}

// leafOp / pairOp are the model's logical operators, with kinds matching
// the generated declarations.
type leafOp struct{ name string }

func (l *leafOp) Kind() core.OpKind { return pairs.KindLEAF }
func (l *leafOp) Arity() int        { return 0 }
func (l *leafOp) ArgsEqual(o core.LogicalOp) bool {
	return l.name == o.(*leafOp).name
}
func (l *leafOp) ArgsHash() uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(l.name); i++ {
		h = (h ^ uint64(l.name[i])) * 1099511628211
	}
	return h
}
func (l *leafOp) Name() string   { return "LEAF" }
func (l *leafOp) String() string { return "LEAF(" + l.name + ")" }

type pairOp struct{}

func (*pairOp) Kind() core.OpKind             { return pairs.KindPAIR }
func (*pairOp) Arity() int                    { return 2 }
func (*pairOp) ArgsEqual(core.LogicalOp) bool { return true }
func (*pairOp) ArgsHash() uint64              { return 11 }
func (*pairOp) Name() string                  { return "PAIR" }
func (*pairOp) String() string                { return "PAIR" }

// weight is the logical property.
type weight int

func (w weight) String() string { return fmt.Sprintf("w=%d", int(w)) }

// sup is the implementor's support code.
type sup struct{}

func (sup) ZeroCost() core.Cost      { return pcost(0) }
func (sup) InfiniteCost() core.Cost  { return pcost(1e18) }
func (sup) AnyProps() core.PhysProps { return pcolor(0) }

func (sup) DeriveLogicalProps(op core.LogicalOp, inputs []core.LogicalProps) core.LogicalProps {
	w := weight(1)
	for _, in := range inputs {
		w += in.(weight)
	}
	return w
}

func (sup) LeafCost(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.Cost {
	return pcost(1)
}

func (sup) PairCost(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.Cost {
	return pcost(2)
}

func (sup) PaintRelax(ctx *core.RuleContext, lp core.LogicalProps, required core.PhysProps) (core.PhysProps, core.PhysProps, bool) {
	if required.(pcolor) == 0 {
		return nil, nil, false
	}
	return pcolor(0), required, true
}

func (sup) PaintCost(ctx *core.RuleContext, lp core.LogicalProps, required core.PhysProps) core.Cost {
	return pcost(5)
}

// TestGeneratedDefaults: the generated pairs optimizer — with default
// applicability, default physical operators, and a generated commute
// rule — optimizes a three-leaf query to the closed-form optimum, and
// the paint enforcer (default build) satisfies a color requirement.
func TestGeneratedDefaults(t *testing.T) {
	model := pairs.New(sup{})
	opt := core.NewOptimizer(model, nil)
	tree := core.Node(&pairOp{},
		core.Node(&pairOp{}, core.Node(&leafOp{name: "a"}), core.Node(&leafOp{name: "b"})),
		core.Node(&leafOp{name: "c"}))
	root := opt.InsertQuery(tree)

	plan, err := opt.Optimize(root, nil)
	if err != nil || plan == nil {
		t.Fatalf("optimize: plan=%v err=%v", plan, err)
	}
	// 3 scans + 2 pairs = 3 + 4 = 7.
	if plan.Cost.(pcost) != 7 {
		t.Fatalf("cost = %v, want 7\n%s", plan.Cost, plan.Format())
	}
	if _, ok := plan.Op.(*pairs.PairAlgOp); !ok {
		t.Fatalf("root = %T, want generated PairAlgOp", plan.Op)
	}

	painted, err := opt.Optimize(root, pcolor(3))
	if err != nil || painted == nil {
		t.Fatalf("optimize painted: plan=%v err=%v", painted, err)
	}
	if painted.Cost.(pcost) != 12 {
		t.Fatalf("painted cost = %v, want 12", painted.Cost)
	}
	if _, ok := painted.Op.(*pairs.PaintOp); !ok {
		t.Fatalf("painted root = %T, want generated PaintOp", painted.Op)
	}

	// Commute closure: the root class holds both orders of {ab|c} plus
	// rotations are absent (no assoc rule), so exactly... commute only
	// doubles each shape.
	if err := opt.Explore(root); err != nil {
		t.Fatal(err)
	}
	if got := len(opt.Memo().Group(root).Exprs()); got != 2 {
		t.Fatalf("root exprs = %d, want 2 (original + commuted)", got)
	}
}

// TestGoldenPairs keeps the checked-in generated package in sync with
// its specification.
func TestGoldenPairs(t *testing.T) {
	specSrc, err := os.ReadFile("../testdata/pairs.model")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := gen.Parse(string(specSrc))
	if err != nil {
		t.Fatal(err)
	}
	got, err := gen.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile("pairs.go")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("generated output differs from checked-in pairs.go; regenerate with volcano-gen")
	}
}
