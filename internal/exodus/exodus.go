// Package exodus re-implements the search strategy of the EXODUS
// optimizer generator, as described in Graefe & DeWitt (SIGMOD 1987) and
// in Section 4 of the Volcano paper, to serve as the baseline of the
// Figure-4 experiment. Its deliberate characteristics, quoted from the
// paper, are:
//
//   - a single node type in the hash table ("MESH") combines a logical
//     operator and a physical algorithm choice; equivalent plans using
//     different algorithms require duplicated nodes;
//   - forward chaining: transformations are applied wherever possible,
//     ordered by expected cost improvement — a rule factor times the
//     current cost of the matched expression — which prefers nodes at
//     the top of the expression, so that when lower expressions are
//     finally transformed, "all consumer nodes above (of which there
//     were many at this time) had to be reanalyzed, creating an
//     extremely large number of MESH nodes";
//   - a transformation is always followed immediately by algorithm
//     selection and cost analysis;
//   - physical properties are handled "rather haphazardly": if the
//     cheapest algorithm happens to deliver a useful sort order it is
//     recorded and used, but required properties never drive the
//     search, and the cost of sorting is folded into the cost function
//     of merge-join.
//
// The cost model and the transformation rules are identical to the
// Volcano configuration in internal/relopt, so differences in
// optimization time, memory, and plan quality are attributable to the
// search strategies alone.
package exodus

import (
	"container/heap"
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/rel"
	"repro/internal/relopt"
)

// ErrBudget is returned when MESH exceeds its node budget — the paper
// reports that the EXODUS optimizer "aborted due to lack of memory" on
// some larger queries.
var ErrBudget = errors.New("exodus: MESH node budget exhausted")

// ErrTimeout is returned when optimization exceeds its time budget —
// the paper aborted EXODUS runs that "ran much longer" than Volcano.
var ErrTimeout = errors.New("exodus: optimization time budget exhausted")

// Config tunes the baseline optimizer.
type Config struct {
	// Params are the cost weights; they must match the Volcano run for
	// a fair comparison.
	Params relopt.Params
	// MaxNodes bounds the number of MESH node versions; 0 means 1<<21.
	MaxNodes int
	// Timeout bounds optimization wall time; 0 means none.
	Timeout time.Duration
}

// eqClass is a set of equivalent logical expressions together with the
// cheapest analyzed version found so far. Unlike a Volcano group it has
// no winner table: one best plan, no per-property alternatives.
type eqClass struct {
	id      int
	props   *rel.Props
	members []*exprNode
	parents []*exprNode
	best    *Node
	repr    *eqClass // union-find parent; self when representative
}

func (c *eqClass) find() *eqClass {
	for c.repr != c {
		c.repr = c.repr.repr
		c = c.repr
	}
	return c
}

// exprNode is one logical expression: an operator over input classes.
type exprNode struct {
	id      int
	op      core.LogicalOp
	ins     []*eqClass
	cls     *eqClass
	applied [numRules]bool
	cur     *Node
	// alts are the current per-algorithm versions (duplicated MESH
	// nodes for equivalent plans using different algorithms).
	alts []*Node
	// dead marks an expression that became a duplicate of another
	// after a class merge; it stays in MESH (the paper calls the
	// structure "extremely cumbersome") but takes no further part in
	// matching.
	dead bool
}

func (e *exprNode) input(i int) *eqClass { return e.ins[i].find() }

// Node is one analyzed MESH version of an expression: the algorithm
// chosen for it, its total cost against the input versions it was
// analyzed with, and the incidental sort order of its output.
type Node struct {
	// ID is the node's creation index.
	ID int
	// Expr is the logical expression this version analyzes.
	Expr *exprNode
	// Inputs are the input versions used by the analysis.
	Inputs []*Node
	// Alg names the chosen algorithm.
	Alg string
	// Cost is the total subtree cost, sorts folded in.
	Cost relopt.Cost
	// SortedOn is the incidental output order (0 if none).
	SortedOn rel.ColID
	// SortedOn2 is the second incidental order of a merge-join output:
	// both equated columns carry identical values, so the stream is
	// ordered on either.
	SortedOn2 rel.ColID
}

// sortedOnCol reports whether the node's output is incidentally ordered
// on the column.
func (n *Node) sortedOnCol(c rel.ColID) bool {
	return c != 0 && (n.SortedOn == c || n.SortedOn2 == c)
}

func (n *Node) props() *rel.Props { return n.Expr.cls.find().props }

// pending is one queued transformation application.
type pending struct {
	rule    int
	expr    *exprNode
	promise float64
}

// moveHeap orders pending transformations by descending promise.
type moveHeap []pending

func (h moveHeap) Len() int           { return len(h) }
func (h moveHeap) Less(i, j int) bool { return h[i].promise > h[j].promise }
func (h moveHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *moveHeap) Push(x any)        { *h = append(*h, x.(pending)) }
func (h *moveHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Stats reports the baseline's search effort.
type Stats struct {
	// Nodes is the number of MESH node versions created.
	Nodes int
	// Exprs is the number of distinct logical expressions.
	Exprs int
	// EqClasses is the number of equivalence classes created.
	EqClasses int
	// Transforms is the number of transformation applications popped.
	Transforms int
	// Reanalyses is the number of consumer reanalyses performed after
	// a class best improved or a class merged.
	Reanalyses int
	// MemoryBytes estimates MESH working-set size.
	MemoryBytes int
}

// Optimizer is the EXODUS-style baseline.
type Optimizer struct {
	cat   *rel.Catalog
	cfg   Config
	stats Stats

	exprByKey map[uint64][]*exprNode
	open      moveHeap
	seen      map[[2]int]bool // (rule, exprID) queued
	done      map[[3]int]bool // (rule, exprID, memberID) applied
	exprSeq   int
	nodeSeq   int
	eqSeq     int
	deadline  time.Time
	err       error
}

// New creates a baseline optimizer over the catalog.
func New(cat *rel.Catalog, cfg Config) *Optimizer {
	if cfg.MaxNodes == 0 {
		cfg.MaxNodes = 1 << 21
	}
	if cfg.Params.PageBytes == 0 {
		cfg.Params = relopt.DefaultParams()
	}
	return &Optimizer{
		cat:       cat,
		cfg:       cfg,
		exprByKey: make(map[uint64][]*exprNode),
		seen:      make(map[[2]int]bool),
		done:      make(map[[3]int]bool),
	}
}

// Stats returns the accumulated search-effort counters.
func (o *Optimizer) Stats() Stats {
	const nodeBytes, exprBytes, classBytes = 88, 72, 96
	o.stats.MemoryBytes = o.stats.Nodes*nodeBytes +
		o.stats.Exprs*exprBytes + o.stats.EqClasses*classBytes
	return o.stats
}

// Optimize loads the query, runs forward chaining to exhaustion, and
// returns the best version of the root expression. requiredSort, when
// nonzero, asks for output sorted on that column; a final sort is glued
// on afterwards if the incidentally delivered order does not match —
// EXODUS had no way to let a required property drive the search.
func (o *Optimizer) Optimize(query *core.ExprTree, requiredSort rel.ColID) (*Node, relopt.Cost, error) {
	if o.cfg.Timeout > 0 {
		o.deadline = time.Now().Add(o.cfg.Timeout)
	}
	rootExpr := o.insert(query)
	if o.err != nil {
		return nil, relopt.Cost{}, o.err
	}
	rootClass := rootExpr.cls.find()
	for o.open.Len() > 0 {
		if o.err != nil {
			return nil, relopt.Cost{}, o.err
		}
		mv := heap.Pop(&o.open).(pending)
		o.applyTransform(mv)
	}
	if o.err != nil {
		return nil, relopt.Cost{}, o.err
	}
	// EXODUS folded enforcer costs into algorithm cost functions; the
	// equivalent at the query root is to charge each candidate version
	// the final sort unless its incidental order already matches, and
	// pick the cheapest. Deeper in the plan no such accounting exists —
	// which is what costs the baseline on complex queries.
	cls := rootClass.find()
	best := cls.best
	cost := o.adjusted(best, requiredSort)
	for _, m := range cls.members {
		if m.dead {
			continue
		}
		for _, v := range m.alts {
			if c := o.adjusted(v, requiredSort); c.Less(cost) {
				best, cost = v, c
			}
		}
	}
	return best, cost, nil
}

// adjusted returns the node's cost plus a final sort when the required
// order is not incidentally delivered.
func (o *Optimizer) adjusted(n *Node, requiredSort rel.ColID) relopt.Cost {
	cost := n.Cost
	if requiredSort != 0 && !n.sortedOnCol(requiredSort) {
		cost = cost.Add(o.sortCost(n.props())).(relopt.Cost)
	}
	return cost
}

// insert builds expressions for the query tree bottom-up.
func (o *Optimizer) insert(t *core.ExprTree) *exprNode {
	inputs := make([]*eqClass, len(t.Children))
	for i, c := range t.Children {
		child := o.insert(c)
		if o.err != nil {
			return child
		}
		inputs[i] = child.cls.find()
	}
	return o.exprFor(t.Op, inputs, nil)
}

// identity hashes a logical expression: kind, argument hash, and
// canonical input class IDs.
func identity(op core.LogicalOp, ins []*eqClass) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	mix(uint64(uint32(op.Kind())))
	mix(op.ArgsHash())
	for _, c := range ins {
		mix(uint64(int64(c.find().id)))
	}
	return h
}

func sameExpr(e *exprNode, op core.LogicalOp, ins []*eqClass) bool {
	if e.op.Kind() != op.Kind() || len(e.ins) != len(ins) {
		return false
	}
	for i, c := range e.ins {
		if c.find() != ins[i].find() {
			return false
		}
	}
	return e.op.ArgsEqual(op)
}

// exprFor finds or creates the expression (op, ins). When target is
// non-nil the expression is asserted equivalent to that class: a found
// expression in another class triggers a class merge; a new expression
// joins target. New expressions are immediately analyzed — in EXODUS a
// transformation is always followed by algorithm selection and cost
// analysis — and their transformations enqueued.
func (o *Optimizer) exprFor(op core.LogicalOp, ins []*eqClass, target *eqClass) *exprNode {
	if o.err != nil {
		return nil
	}
	if !o.deadline.IsZero() && time.Now().After(o.deadline) {
		o.err = ErrTimeout
		return nil
	}
	for i, c := range ins {
		ins[i] = c.find()
	}
	h := identity(op, ins)
	for _, e := range o.exprByKey[h] {
		if !e.dead && sameExpr(e, op, ins) {
			if target != nil && e.cls.find() != target.find() {
				o.mergeClasses(e.cls.find(), target.find())
			}
			return e
		}
	}
	e := &exprNode{id: o.exprSeq, op: op, ins: ins}
	o.exprSeq++
	o.stats.Exprs++
	o.exprByKey[h] = append(o.exprByKey[h], e)

	if target == nil {
		inProps := make([]core.LogicalProps, len(ins))
		for i, c := range ins {
			inProps[i] = c.props
		}
		cls := &eqClass{id: o.eqSeq, props: rel.DeriveProps(o.cat, op, inProps)}
		cls.repr = cls
		o.eqSeq++
		o.stats.EqClasses++
		target = cls
	} else {
		target = target.find()
	}
	e.cls = target
	target.members = append(target.members, e)
	for _, c := range ins {
		c.parents = append(c.parents, e)
	}

	o.reanalyze(e)
	o.enqueueMatches(e)
	// Every consumer of the class can now bind through the new member;
	// its rules must be rematched.
	for _, p := range append([]*exprNode(nil), target.parents...) {
		o.requeueMatches(p)
	}
	return e
}

// reanalyze computes a fresh MESH version of the expression against the
// current best versions of its input classes, and promotes it if it
// improves the class best. Each call creates a node, as in EXODUS.
func (o *Optimizer) reanalyze(e *exprNode) {
	if o.err != nil || e.dead {
		return
	}
	inputs := make([]*Node, len(e.ins))
	for i := range e.ins {
		inputs[i] = e.input(i).best
		if inputs[i] == nil {
			// The input class is mid-construction (only possible
			// during a merge cascade); it will reanalyze us again.
			return
		}
	}
	versions := o.analyzeVersions(e, inputs)
	if len(versions) == 0 {
		return
	}
	best := versions[0]
	for _, v := range versions[1:] {
		if v.Cost.Less(best.Cost) {
			best = v
		}
	}
	e.alts = versions
	if prev := e.cur; prev == nil || best.Cost.Less(prev.Cost) {
		e.cur = best
	}
	cls := e.cls.find()
	if cls.best == nil || best.Cost.Less(cls.best.Cost) {
		cls.best = best
		o.propagate(cls)
	}
}

// propagate reanalyzes every consumer of a class whose best version
// changed: the reanalysis cascade that dominated EXODUS's running time
// on larger queries.
func (o *Optimizer) propagate(cls *eqClass) {
	parents := append([]*exprNode(nil), cls.parents...)
	for _, p := range parents {
		if o.err != nil {
			return
		}
		if p.dead {
			continue
		}
		o.stats.Reanalyses++
		o.reanalyze(p)
	}
}

// mergeClasses unifies two classes proven equivalent by a
// transformation, keeps the cheaper best, reanalyzes the union's
// consumers, and re-enqueues their transformations so multi-level rules
// can rebind through the enlarged class. Consumers of the merged-away
// class change logical identity; they are re-hashed, and consumers that
// thereby become duplicates of existing expressions are retired and
// their classes merged in turn.
func (o *Optimizer) mergeClasses(a, b *eqClass) {
	a, b = a.find(), b.find()
	if a == b {
		return
	}
	if b.id < a.id {
		a, b = b, a
	}
	b.repr = a
	for _, m := range b.members {
		m.cls = a
	}
	a.members = append(a.members, b.members...)
	b.members = nil
	moved := b.parents
	a.parents = append(a.parents, b.parents...)
	b.parents = nil
	if a.best == nil || (b.best != nil && b.best.Cost.Less(a.best.Cost)) {
		a.best = b.best
	}
	b.best = nil

	// Re-hash the consumers whose identity changed and collapse new
	// duplicates.
	for _, p := range moved {
		if p.dead {
			continue
		}
		h := identity(p.op, p.ins)
		dup := false
		for _, e2 := range o.exprByKey[h] {
			if e2 != p && !e2.dead && sameExpr(e2, p.op, p.ins) {
				p.dead = true
				o.mergeClasses(p.cls.find(), e2.cls.find())
				dup = true
				break
			}
		}
		if !dup {
			o.exprByKey[h] = append(o.exprByKey[h], p)
		}
		if o.err != nil {
			return
		}
	}

	// Consumers of either side must be reanalyzed and their rules
	// rematched against the union.
	for _, p := range append([]*exprNode(nil), a.find().parents...) {
		if o.err != nil {
			return
		}
		if p.dead {
			continue
		}
		o.stats.Reanalyses++
		o.reanalyze(p)
		o.requeueMatches(p)
	}
}
