package exodus

import (
	"fmt"
	"math"

	"repro/internal/rel"
	"repro/internal/relopt"
)

// analyzeVersions performs EXODUS's immediate algorithm selection and
// cost analysis for one expression, producing one MESH node per
// applicable algorithm — "to retain equivalent plans using merge-join
// and hybrid hash join, the logical expression had to be kept twice,
// resulting in a large number of nodes in MESH". Sort costs are folded
// into merge-join where inputs are not incidentally sorted, and each
// version records the incidental sort order of its output. The cost
// formulas match internal/relopt exactly, so the two engines price
// identical plans identically.
func (o *Optimizer) analyzeVersions(e *exprNode, inputs []*Node) []*Node {
	p := o.cfg.Params
	props := e.cls.find().props
	version := func() *Node {
		if o.stats.Nodes >= o.cfg.MaxNodes {
			o.err = ErrBudget
			return nil
		}
		n := &Node{ID: o.nodeSeq, Expr: e, Inputs: inputs}
		o.nodeSeq++
		o.stats.Nodes++
		return n
	}

	switch op := e.op.(type) {
	case *rel.Get:
		n := version()
		if n == nil {
			return nil
		}
		n.Alg = "filescan"
		n.Cost = relopt.Cost{
			IO:  props.Pages(p.PageBytes),
			CPU: props.Rows * p.CPUTuple,
		}
		return []*Node{n}

	case *rel.Select:
		in := inputs[0]
		n := version()
		if n == nil {
			return nil
		}
		n.Alg = "filter"
		n.Cost = in.Cost.Add(relopt.Cost{CPU: in.props().Rows * p.CPUPred}).(relopt.Cost)
		n.SortedOn, n.SortedOn2 = in.SortedOn, in.SortedOn2
		return []*Node{n}

	case *rel.Project:
		in := inputs[0]
		n := version()
		if n == nil {
			return nil
		}
		n.Alg = "project"
		n.Cost = in.Cost.Add(relopt.Cost{CPU: in.props().Rows * p.CPUTuple}).(relopt.Cost)
		for _, c := range op.Cols {
			if c == in.SortedOn {
				n.SortedOn = in.SortedOn
			}
			if c == in.SortedOn2 {
				n.SortedOn2 = in.SortedOn2
			}
		}
		return []*Node{n}

	case *rel.Join:
		return o.analyzeJoin(e, inputs, op, version)

	case *rel.Intersect:
		return o.analyzeIntersect(e, inputs, version)

	case *rel.GroupBy:
		return o.analyzeGroupBy(e, inputs, op, version)
	}
	panic(fmt.Sprintf("exodus: unknown logical operator %T", e.op))
}

// sortCost prices a single-level merge sort of a result with the given
// properties, identical to the Volcano model's sort enforcer.
func (o *Optimizer) sortCost(props *rel.Props) relopt.Cost {
	p := o.cfg.Params
	rows := props.Rows
	return relopt.Cost{
		IO:  2 * props.Pages(p.PageBytes) * p.SpillIO,
		CPU: rows * log2(rows) * p.CPUCompare,
	}
}

func log2(n float64) float64 {
	if n < 2 {
		return 1
	}
	return math.Log2(n)
}

// analyzeJoin produces a hybrid-hash-join version and a merge-join
// version. The cost of sorting unsorted inputs is included in
// merge-join's cost function — the property-blind treatment the Volcano
// paper criticizes.
func (o *Optimizer) analyzeJoin(e *exprNode, inputs []*Node, j *rel.Join, version func() *Node) []*Node {
	p := o.cfg.Params
	l, r := inputs[0], inputs[1]
	lp, rp := l.props(), r.props()
	out := e.cls.find().props

	var lc, rc rel.ColID
	switch {
	case lp.HasCol(j.A) && rp.HasCol(j.B):
		lc, rc = j.A, j.B
	case lp.HasCol(j.B) && rp.HasCol(j.A):
		lc, rc = j.B, j.A
	default:
		panic("exodus: join predicate does not span the inputs")
	}

	inCost := l.Cost.Add(r.Cost).(relopt.Cost)

	hash := version()
	if hash == nil {
		return nil
	}
	hash.Alg = "hybrid-hash-join"
	hash.Cost = inCost.Add(relopt.Cost{
		IO:  relopt.HashSpillIO(p, lp.Pages(p.PageBytes), rp.Pages(p.PageBytes)),
		CPU: (lp.Rows+rp.Rows)*p.CPUHash + out.Rows*p.CPUTuple,
	}).(relopt.Cost)

	merge := version()
	if merge == nil {
		return nil
	}
	merge.Alg = "merge-join"
	mc := inCost
	if !l.sortedOnCol(lc) {
		mc = mc.Add(o.sortCost(lp)).(relopt.Cost)
	}
	if !r.sortedOnCol(rc) {
		mc = mc.Add(o.sortCost(rp)).(relopt.Cost)
	}
	merge.Cost = mc.Add(relopt.Cost{
		CPU: (lp.Rows+rp.Rows)*p.CPUCompare + out.Rows*p.CPUTuple,
	}).(relopt.Cost)
	merge.SortedOn, merge.SortedOn2 = lc, rc

	return []*Node{hash, merge}
}

// analyzeIntersect produces hash- and merge-based intersection versions.
func (o *Optimizer) analyzeIntersect(e *exprNode, inputs []*Node, version func() *Node) []*Node {
	p := o.cfg.Params
	l, r := inputs[0], inputs[1]
	lp, rp := l.props(), r.props()
	out := e.cls.find().props
	inCost := l.Cost.Add(r.Cost).(relopt.Cost)

	hash := version()
	if hash == nil {
		return nil
	}
	hash.Alg = "hash-intersect"
	hash.Cost = inCost.Add(relopt.Cost{
		IO:  relopt.HashSpillIO(p, lp.Pages(p.PageBytes), rp.Pages(p.PageBytes)),
		CPU: (lp.Rows+rp.Rows)*p.CPUHash + out.Rows*p.CPUTuple,
	}).(relopt.Cost)

	// Merge intersection needs both inputs fully sorted; EXODUS always
	// charges the sorts because single-column incidental order says
	// nothing about a full-row order.
	merge := version()
	if merge == nil {
		return nil
	}
	merge.Alg = "merge-intersect"
	mc := inCost.Add(o.sortCost(lp)).(relopt.Cost).Add(o.sortCost(rp)).(relopt.Cost)
	merge.Cost = mc.Add(relopt.Cost{
		CPU: (lp.Rows+rp.Rows)*p.CPUCompare*float64(len(out.Cols)) + out.Rows*p.CPUTuple,
	}).(relopt.Cost)

	return []*Node{hash, merge}
}

// analyzeGroupBy produces hash- and sort-grouping versions.
func (o *Optimizer) analyzeGroupBy(e *exprNode, inputs []*Node, g *rel.GroupBy, version func() *Node) []*Node {
	p := o.cfg.Params
	in := inputs[0]
	ip := in.props()
	out := e.cls.find().props

	hash := version()
	if hash == nil {
		return nil
	}
	hash.Alg = "hash-groupby"
	hash.Cost = in.Cost.Add(relopt.Cost{
		CPU: ip.Rows*p.CPUHash + out.Rows*p.CPUTuple,
	}).(relopt.Cost)

	srt := version()
	if srt == nil {
		return nil
	}
	srt.Alg = "sort-groupby"
	sc := in.Cost
	if len(g.GroupCols) != 1 || !in.sortedOnCol(g.GroupCols[0]) {
		sc = sc.Add(o.sortCost(ip)).(relopt.Cost)
	}
	srt.Cost = sc.Add(relopt.Cost{
		CPU: ip.Rows*p.CPUCompare + out.Rows*p.CPUTuple,
	}).(relopt.Cost)
	if len(g.GroupCols) == 1 {
		srt.SortedOn = g.GroupCols[0]
	}

	return []*Node{hash, srt}
}
