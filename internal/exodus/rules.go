package exodus

import (
	"container/heap"

	"repro/internal/rel"
)

// The baseline's transformation rules mirror the Volcano configuration:
// join commutativity, join associativity, selection pushdown, and
// selection commutation. Each rule carries the "expected cost
// improvement factor" of the EXODUS design; the promise of a queued
// application is factor × current cost of the matched expression, so
// expensive top-of-tree expressions are transformed first — the ordering
// the Volcano paper identifies as "worst of all for optimizer
// performance".
const (
	ruleJoinCommute = iota
	ruleJoinAssoc
	ruleSelectPushdown
	ruleSelectCommute
	numRules
)

var ruleFactor = [numRules]float64{
	ruleJoinCommute:    1.0,
	ruleJoinAssoc:      1.05,
	ruleSelectPushdown: 1.1,
	ruleSelectCommute:  1.0,
}

// enqueueMatches queues every rule whose top operator matches the new
// expression. Deeper pattern levels are matched against class members at
// application time.
func (o *Optimizer) enqueueMatches(e *exprNode) {
	switch e.op.(type) {
	case *rel.Join:
		o.enqueue(ruleJoinCommute, e)
		o.enqueue(ruleJoinAssoc, e)
	case *rel.Select:
		o.enqueue(ruleSelectPushdown, e)
		o.enqueue(ruleSelectCommute, e)
	}
}

// requeueMatches clears the seen-marks for an expression so its rules
// rematch after an input class gained members.
func (o *Optimizer) requeueMatches(e *exprNode) {
	for r := 0; r < numRules; r++ {
		delete(o.seen, [2]int{r, e.id})
	}
	o.enqueueMatches(e)
}

func (o *Optimizer) enqueue(rule int, e *exprNode) {
	k := [2]int{rule, e.id}
	if o.seen[k] {
		return
	}
	o.seen[k] = true
	promise := ruleFactor[rule]
	if e.cur != nil {
		promise *= e.cur.Cost.Total()
	}
	heap.Push(&o.open, pending{rule: rule, expr: e, promise: promise})
}

// membersOfKind snapshots the live members of a class rooted at the
// given operator kind, for binding the inner level of two-level
// patterns.
func membersOfKind[T any](c *eqClass) []*exprNode {
	var out []*exprNode
	for _, m := range c.find().members {
		if m.dead {
			continue
		}
		if _, ok := m.op.(T); ok {
			out = append(out, m)
		}
	}
	return out
}

// applyTransform pops one queued application and rewrites the
// expression, creating new expressions (with immediate algorithm
// selection and cost analysis) equivalent to the matched one. Each
// (rule, expression, inner member) combination is rewritten once, as in
// EXODUS's per-expression transformation queue; re-queued applications
// only process members that arrived since.
func (o *Optimizer) applyTransform(mv pending) {
	e := mv.expr
	if e.dead {
		return
	}
	o.stats.Transforms++
	fresh := func(inner *exprNode) bool {
		k := [3]int{mv.rule, e.id, inner.id}
		if o.done[k] {
			return false
		}
		o.done[k] = true
		return true
	}
	switch mv.rule {
	case ruleJoinCommute:
		o.exprFor(e.op, []*eqClass{e.input(1), e.input(0)}, e.cls.find())

	case ruleJoinAssoc:
		top := e.op.(*rel.Join)
		c := e.input(1)
		for _, inner := range membersOfKind[*rel.Join](e.input(0)) {
			if !fresh(inner) {
				continue
			}
			a, b := inner.input(0), inner.input(1)
			bp, cp := b.props, c.props
			if !(bp.HasCol(top.A) || cp.HasCol(top.A)) ||
				!(bp.HasCol(top.B) || cp.HasCol(top.B)) {
				continue
			}
			bc := o.exprFor(top, []*eqClass{b, c}, nil)
			if bc == nil {
				return
			}
			o.exprFor(inner.op, []*eqClass{a, bc.cls.find()}, e.cls.find())
			if o.err != nil {
				return
			}
		}

	case ruleSelectPushdown:
		sel := e.op.(*rel.Select)
		cols := []rel.ColID{sel.Pred.Col}
		if sel.Pred.IsColCol() {
			cols = append(cols, sel.Pred.OtherCol)
		}
		for _, join := range membersOfKind[*rel.Join](e.input(0)) {
			if !fresh(join) {
				continue
			}
			l, r := join.input(0), join.input(1)
			if l.props.HasCols(cols) {
				nl := o.exprFor(sel, []*eqClass{l}, nil)
				if nl == nil {
					return
				}
				o.exprFor(join.op, []*eqClass{nl.cls.find(), r}, e.cls.find())
			}
			if o.err != nil {
				return
			}
			if r.props.HasCols(cols) {
				nr := o.exprFor(sel, []*eqClass{r}, nil)
				if nr == nil {
					return
				}
				o.exprFor(join.op, []*eqClass{l, nr.cls.find()}, e.cls.find())
			}
			if o.err != nil {
				return
			}
		}

	case ruleSelectCommute:
		outer := e.op.(*rel.Select)
		for _, inner := range membersOfKind[*rel.Select](e.input(0)) {
			if !fresh(inner) {
				continue
			}
			ns := o.exprFor(outer, []*eqClass{inner.input(0)}, nil)
			if ns == nil {
				return
			}
			o.exprFor(inner.op, []*eqClass{ns.cls.find()}, e.cls.find())
			if o.err != nil {
				return
			}
		}
	}
}
