package exodus

import (
	"testing"

	"repro/internal/datagen"
)

func TestProbeNodeCounts(t *testing.T) {
	s := datagen.New(12)
	cat := s.Catalog(8)
	for n := 2; n <= 8; n++ {
		q := s.SelectJoinQuery(cat, n, datagen.ShapeRandom)
		opt := New(cat, Config{})
		_, cost, err := opt.Optimize(q.Root, 0)
		st := opt.Stats()
		t.Logf("n=%d err=%v nodes=%d eq=%d transforms=%d reanalyses=%d cost=%.1f",
			n, err, st.Nodes, st.EqClasses, st.Transforms, st.Reanalyses, cost.Total())
	}
}
