package exodus

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/relopt"
)

func TestBaselineOptimizesSmallQuery(t *testing.T) {
	s := datagen.New(10)
	cat := s.Catalog(4)
	q := s.SelectJoinQuery(cat, 3, datagen.ShapeChain)

	opt := New(cat, Config{})
	best, cost, err := opt.Optimize(q.Root, 0)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if best == nil || cost.Total() <= 0 {
		t.Fatalf("best=%v cost=%v", best, cost)
	}
	st := opt.Stats()
	t.Logf("nodes=%d eq=%d transforms=%d reanalyses=%d cost=%s",
		st.Nodes, st.EqClasses, st.Transforms, st.Reanalyses, cost)
}

// TestBaselineNeverBeatsVolcano checks the dynamic-programming optimum:
// the baseline's greedy plan can never be cheaper than Volcano's
// (identical cost model and rule set), and the two should agree on very
// small queries, matching the paper's report of equal plan quality up to
// moderate complexity.
func TestBaselineNeverBeatsVolcano(t *testing.T) {
	s := datagen.New(11)
	cat := s.Catalog(6)
	for n := 2; n <= 5; n++ {
		for trial := 0; trial < 10; trial++ {
			q := s.SelectJoinQuery(cat, n, datagen.ShapeRandom)

			ex := New(cat, Config{Timeout: 30 * time.Second})
			_, exCost, err := ex.Optimize(q.Root, 0)
			if err != nil {
				t.Fatalf("n=%d trial=%d exodus: %v", n, trial, err)
			}

			model := relopt.New(cat, relopt.DefaultConfig())
			vo := core.NewOptimizer(model, nil)
			root := vo.InsertQuery(q.Root)
			plan, err := vo.Optimize(root, nil)
			if err != nil {
				t.Fatalf("n=%d trial=%d volcano: %v", n, trial, err)
			}
			voCost := plan.Cost.(relopt.Cost)

			if exCost.Total() < voCost.Total()-1e-6 {
				t.Errorf("n=%d trial=%d: EXODUS cost %.3f beats Volcano optimum %.3f",
					n, trial, exCost.Total(), voCost.Total())
			}
		}
	}
}

func TestBaselineBudgetAbort(t *testing.T) {
	s := datagen.New(12)
	cat := s.Catalog(8)
	q := s.SelectJoinQuery(cat, 8, datagen.ShapeRandom)
	opt := New(cat, Config{MaxNodes: 200})
	_, _, err := opt.Optimize(q.Root, 0)
	if err != ErrBudget {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}
