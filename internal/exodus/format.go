package exodus

import (
	"fmt"
	"strings"
)

// Format renders the MESH version as an indented plan tree with the
// algorithm choices and subtree costs, for comparison against Volcano
// plan output.
func (n *Node) Format() string {
	var b strings.Builder
	n.format(&b, 0)
	return b.String()
}

func (n *Node) format(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	fmt.Fprintf(b, "%s  [%s]  (cost=%s", n.Alg, n.Expr.op, n.Cost)
	if n.SortedOn != 0 {
		fmt.Fprintf(b, ", sorted=c%d", n.SortedOn)
	}
	b.WriteString(")\n")
	for _, in := range n.Inputs {
		in.format(b, depth+1)
	}
}

// ClassSize returns the number of live equivalent logical expressions
// in the node's class — for the root, the closure of the transformation
// rules, comparable against the Volcano memo's root class.
func (n *Node) ClassSize() int {
	live := 0
	for _, m := range n.Expr.cls.find().members {
		if !m.dead {
			live++
		}
	}
	return live
}

// Algorithms returns the multiset of algorithm names in the version
// tree, for tests and reporting.
func (n *Node) Algorithms() []string {
	out := []string{n.Alg}
	for _, in := range n.Inputs {
		out = append(out, in.Algorithms()...)
	}
	return out
}
