package exodus

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/rel"
	"repro/internal/relopt"
)

// pushdownFixture builds σ(emp.age)(emp ⋈ dept): the selection sits
// above the join, so only the pushdown rule can move it down.
func pushdownFixture() (*rel.Catalog, *core.ExprTree, rel.ColID) {
	cat := rel.NewCatalog()
	emp := cat.AddTable("emp", 4000, 100)
	cat.AddColumn(emp, "id", 4000, 1, 4000)
	empDept := cat.AddColumn(emp, "dept", 100, 1, 100)
	empAge := cat.AddColumn(emp, "age", 50, 18, 67)
	dept := cat.AddTable("dept", 100, 100)
	deptID := cat.AddColumn(dept, "id", 100, 1, 100)

	join := core.Node(rel.NewJoin(empDept, deptID),
		core.Node(&rel.Get{Tab: emp}),
		core.Node(&rel.Get{Tab: dept}))
	sel := core.Node(&rel.Select{Pred: rel.Pred{Col: empAge, Op: rel.CmpLT, Val: 30}}, join)
	return cat, sel, empDept
}

// TestSelectPushdownMatchesVolcano: both engines must find the pushed
// selection (it is strictly cheaper), and agree on the optimum for this
// small query.
func TestSelectPushdownMatchesVolcano(t *testing.T) {
	cat, query, orderCol := pushdownFixture()

	ex := New(cat, Config{Timeout: 30 * time.Second})
	_, exCost, err := ex.Optimize(query, orderCol)
	if err != nil {
		t.Fatal(err)
	}

	opt := core.NewOptimizer(relopt.New(cat, relopt.DefaultConfig()), nil)
	root := opt.InsertQuery(query)
	plan, err := opt.Optimize(root, relopt.SortedOn(orderCol))
	if err != nil || plan == nil {
		t.Fatal(err)
	}
	vo := plan.Cost.(relopt.Cost).Total()
	if exCost.Total() < vo-1e-6 {
		t.Fatalf("EXODUS %f beats Volcano optimum %f", exCost.Total(), vo)
	}
	if exCost.Total() > vo+1e-6 {
		t.Fatalf("EXODUS missed the pushed-down plan: %f vs %f", exCost.Total(), vo)
	}
}

// TestSelectCommuteClosure: two stacked selections explore both orders
// in MESH.
func TestSelectCommuteClosure(t *testing.T) {
	cat := rel.NewCatalog()
	emp := cat.AddTable("emp", 1000, 100)
	a := cat.AddColumn(emp, "a", 100, 1, 100)
	b := cat.AddColumn(emp, "b", 10, 1, 10)

	tree := core.Node(&rel.Select{Pred: rel.Pred{Col: a, Op: rel.CmpLT, Val: 50}},
		core.Node(&rel.Select{Pred: rel.Pred{Col: b, Op: rel.CmpEQ, Val: 3}},
			core.Node(&rel.Get{Tab: emp})))
	opt := New(cat, Config{})
	if _, _, err := opt.Optimize(tree, 0); err != nil {
		t.Fatal(err)
	}
	// GET, two single selects, two stacked orders = 5 expressions.
	if got := opt.Stats().Exprs; got != 5 {
		t.Fatalf("exprs = %d, want 5", got)
	}
}

// TestTimeoutAbort: an unreasonably small time budget aborts cleanly.
func TestTimeoutAbort(t *testing.T) {
	s := datagen.New(9)
	cat := s.Catalog(8)
	q := s.SelectJoinQuery(cat, 8, datagen.ShapeRandom)
	opt := New(cat, Config{Timeout: time.Nanosecond})
	if _, _, err := opt.Optimize(q.Root, 0); err != ErrTimeout {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

// TestIncidentalOrderExploited: with the required order matching a
// merge-join output, no separate final sort is charged.
func TestIncidentalOrderExploited(t *testing.T) {
	cat := rel.NewCatalog()
	// Two small tables whose join strongly favors merge-join when the
	// output must be ordered on the join column.
	r1 := cat.AddTable("r1", 2000, 100)
	c1 := cat.AddColumn(r1, "k", 50, 1, 50)
	r2 := cat.AddTable("r2", 3000, 100)
	c2 := cat.AddColumn(r2, "k", 50, 1, 50)

	query := core.Node(rel.NewJoin(c1, c2),
		core.Node(&rel.Get{Tab: r1}),
		core.Node(&rel.Get{Tab: r2}))

	opt := New(cat, Config{})
	node, cost, err := opt.Optimize(query, c1)
	if err != nil {
		t.Fatal(err)
	}
	if node.Alg != "merge-join" {
		t.Fatalf("chosen alg = %s, want merge-join for ordered output", node.Alg)
	}
	// The adjusted cost must equal the node's own cost: the merge-join
	// output is incidentally ordered on both equated columns.
	if cost.Total() != node.Cost.Total() {
		t.Fatalf("final sort charged despite incidental order: %f vs %f",
			cost.Total(), node.Cost.Total())
	}
	if !node.sortedOnCol(c1) || !node.sortedOnCol(c2) {
		t.Fatal("merge-join output should be ordered on both join columns")
	}
}

// TestStatsAndMemory: counters populate and the MESH memory estimate
// grows with search effort.
func TestStatsAndMemory(t *testing.T) {
	s := datagen.New(10)
	cat := s.Catalog(6)
	small := New(cat, Config{})
	if _, _, err := small.Optimize(s.SelectJoinQuery(cat, 2, datagen.ShapeRandom).Root, 0); err != nil {
		t.Fatal(err)
	}
	big := New(cat, Config{})
	if _, _, err := big.Optimize(s.SelectJoinQuery(cat, 6, datagen.ShapeRandom).Root, 0); err != nil {
		t.Fatal(err)
	}
	ss, bs := small.Stats(), big.Stats()
	if bs.Nodes <= ss.Nodes || bs.MemoryBytes <= ss.MemoryBytes {
		t.Fatalf("effort did not grow: %+v vs %+v", ss, bs)
	}
	if bs.Transforms == 0 || bs.EqClasses == 0 {
		t.Fatalf("missing counters: %+v", bs)
	}
}

// TestNodeFormatting: the MESH plan rendering shows the chosen
// algorithms with their logical operators and costs.
func TestNodeFormatting(t *testing.T) {
	cat, query, _ := pushdownFixture()
	opt := New(cat, Config{})
	node, _, err := opt.Optimize(query, 0)
	if err != nil {
		t.Fatal(err)
	}
	out := node.Format()
	for _, want := range []string{"filescan", "cost="} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
	algs := node.Algorithms()
	if len(algs) < 3 {
		t.Fatalf("algorithms = %v", algs)
	}
}

// TestClosureMatchesVolcano: both engines apply the same transformation
// rules exhaustively, so the root equivalence class must contain the
// same number of distinct logical expressions (all join orders).
func TestClosureMatchesVolcano(t *testing.T) {
	s := datagen.New(14)
	cat := s.Catalog(6)
	for n := 2; n <= 6; n++ {
		q := s.SelectJoinQuery(cat, n, datagen.ShapeRandom)

		ex := New(cat, Config{Timeout: 30 * time.Second})
		node, _, err := ex.Optimize(q.Root, 0)
		if err != nil {
			t.Fatalf("n=%d exodus: %v", n, err)
		}

		vo := core.NewOptimizer(relopt.New(cat, relopt.DefaultConfig()), nil)
		root := vo.InsertQuery(q.Root)
		if err := vo.Explore(root); err != nil {
			t.Fatalf("n=%d volcano: %v", n, err)
		}
		memo := vo.Memo()
		distinct := map[string]bool{}
		for _, e := range memo.Group(root).Exprs() {
			key := e.Op.String()
			for _, in := range e.Inputs {
				key += ":" + itoa(int(memo.Find(in)))
			}
			distinct[key] = true
		}
		if got, want := node.ClassSize(), len(distinct); got != want {
			t.Errorf("n=%d: EXODUS root class has %d expressions, Volcano %d", n, got, want)
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
