package relopt

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rel"
)

// testCatalog builds a three-table catalog: emp(id,dept,age),
// dept(id,head), proj(head,budget) with a chain join path
// emp.dept = dept.id, dept.head = proj.head.
func testCatalog(t *testing.T) (*rel.Catalog, map[string]rel.ColID) {
	t.Helper()
	cat := rel.NewCatalog()
	cols := make(map[string]rel.ColID)

	emp := cat.AddTable("emp", 7200, 100)
	cols["emp.id"] = cat.AddColumn(emp, "id", 7200, 1, 7200)
	cols["emp.dept"] = cat.AddColumn(emp, "dept", 1200, 1, 1200)
	cols["emp.age"] = cat.AddColumn(emp, "age", 50, 18, 67)

	dept := cat.AddTable("dept", 1200, 100)
	cols["dept.id"] = cat.AddColumn(dept, "id", 1200, 1, 1200)
	cols["dept.head"] = cat.AddColumn(dept, "head", 1200, 1, 1200)

	proj := cat.AddTable("proj", 2400, 100)
	cols["proj.head"] = cat.AddColumn(proj, "head", 1200, 1, 1200)
	cols["proj.budget"] = cat.AddColumn(proj, "budget", 1000, 0, 1_000_000)

	return cat, cols
}

// chainQuery builds SELECT over emp ⋈ dept ⋈ proj with one selection.
func chainQuery(cat *rel.Catalog, cols map[string]rel.ColID) *core.ExprTree {
	scanEmp := core.Node(&rel.Get{Tab: cat.Table("emp")})
	scanDept := core.Node(&rel.Get{Tab: cat.Table("dept")})
	scanProj := core.Node(&rel.Get{Tab: cat.Table("proj")})
	selEmp := core.Node(&rel.Select{Pred: rel.Pred{Col: cols["emp.age"], Op: rel.CmpGT, Val: 40}}, scanEmp)
	j1 := core.Node(rel.NewJoin(cols["emp.dept"], cols["dept.id"]), selEmp, scanDept)
	j2 := core.Node(rel.NewJoin(cols["dept.head"], cols["proj.head"]), j1, scanProj)
	return j2
}

func TestSmokeOptimizeChain(t *testing.T) {
	cat, cols := testCatalog(t)
	model := New(cat, DefaultConfig())
	opt := core.NewOptimizer(model, nil)
	root := opt.InsertQuery(chainQuery(cat, cols))

	plan, err := opt.Optimize(root, nil)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if plan == nil {
		t.Fatal("Optimize returned no plan")
	}
	t.Logf("plan:\n%s", plan.Format())
	t.Logf("stats: %+v", *opt.Stats())
	if plan.Cost.(Cost).Total() <= 0 {
		t.Fatalf("plan cost %v not positive", plan.Cost)
	}
}

func TestSmokeOptimizeSorted(t *testing.T) {
	cat, cols := testCatalog(t)
	model := New(cat, DefaultConfig())
	opt := core.NewOptimizer(model, nil)
	root := opt.InsertQuery(chainQuery(cat, cols))

	required := SortedOn(cols["emp.dept"])
	plan, err := opt.Optimize(root, required)
	if err != nil {
		t.Fatalf("Optimize: %v", err)
	}
	if plan == nil {
		t.Fatal("Optimize returned no plan for sorted requirement")
	}
	if !plan.Delivered.Covers(required) {
		t.Fatalf("delivered %s does not cover required %s", plan.Delivered, required)
	}
	t.Logf("sorted plan:\n%s", plan.Format())
	if opt.Stats().ConsistencyViolations != 0 {
		t.Fatalf("consistency violations: %d", opt.Stats().ConsistencyViolations)
	}
}
