package relopt_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/rel"
	"repro/internal/relopt"
	"repro/internal/sqlish"
)

// dynamicFixture: two tables joined on ja, with a parameterized range
// predicate on R1.v. Low selectivity favors filtering early and joining
// the small side differently than high selectivity does.
func dynamicFixture(t *testing.T) (*rel.Catalog, *exec.DB, *sqlish.Statement) {
	t.Helper()
	src := datagen.New(77)
	cat := src.Catalog(2)
	db := exec.FromData(cat, src.Rows(cat))
	st, err := sqlish.Parse(cat,
		"SELECT R1.id, R1.jb, R2.v FROM R1, R2 WHERE R1.jb = R2.jb AND R1.v < $1 ORDER BY R1.jb")
	if err != nil {
		t.Fatal(err)
	}
	return cat, db, st
}

func TestDynamicPlanAlternatives(t *testing.T) {
	cat, _, st := dynamicFixture(t)
	res, err := relopt.OptimizeDynamic(cat, relopt.DefaultConfig(), st.Tree, st.Required, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Alternatives < 2 {
		t.Fatalf("expected multiple alternatives across selectivity regions, got %d\n%s",
			res.Alternatives, res.Plan.Format())
	}
	cp, ok := res.Plan.Op.(*relopt.ChoosePlan)
	if !ok {
		t.Fatalf("root is %T, want ChoosePlan", res.Plan.Op)
	}
	if len(cp.Cutoffs) != len(res.Plan.Inputs) {
		t.Fatalf("cutoffs %d != alternatives %d", len(cp.Cutoffs), len(res.Plan.Inputs))
	}
	if cp.Cutoffs[len(cp.Cutoffs)-1] != 1 {
		t.Fatalf("last cutoff %f, want 1", cp.Cutoffs[len(cp.Cutoffs)-1])
	}
	// The runtime choice must be monotone in the parameter (higher
	// value ⇒ higher selectivity for a < predicate ⇒ same or later
	// region).
	prev := -1
	for v := int64(0); v <= 1000; v += 100 {
		idx := cp.ChooseAlternative(v)
		if idx < prev {
			t.Fatalf("alternative index decreased: %d after %d at value %d", idx, prev, v)
		}
		prev = idx
	}
}

// TestDynamicPlanExecutesCorrectly: for several parameter bindings, the
// dynamic plan's result equals directly optimizing and running the
// fully-specified query.
func TestDynamicPlanExecutesCorrectly(t *testing.T) {
	cat, db, st := dynamicFixture(t)
	res, err := relopt.OptimizeDynamic(cat, relopt.DefaultConfig(), st.Tree, st.Required, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{5, 120, 500, 999} {
		got, gotSchema, err := exec.RunParams(db, res.Plan, []int64{v})
		if err != nil {
			t.Fatalf("v=%d run dynamic: %v", v, err)
		}

		// Oracle: substitute the value and optimize statically.
		bound := bindParam(t, cat, v)
		opt := core.NewOptimizer(relopt.New(cat, relopt.DefaultConfig()), nil)
		root := opt.InsertQuery(bound.Tree)
		plan, err := opt.Optimize(root, bound.Required)
		if err != nil || plan == nil {
			t.Fatalf("v=%d static optimize: %v", v, err)
		}
		want, wantSchema, err := exec.Run(db, plan)
		if err != nil {
			t.Fatalf("v=%d run static: %v", v, err)
		}
		if exec.Fingerprint(exec.Canonical(got, gotSchema)) !=
			exec.Fingerprint(exec.Canonical(want, wantSchema)) {
			t.Fatalf("v=%d: dynamic result (%d rows) != static result (%d rows)",
				v, len(got), len(want))
		}
	}
}

func bindParam(t *testing.T, cat *rel.Catalog, v int64) *sqlish.Statement {
	t.Helper()
	st, err := sqlish.Parse(cat,
		"SELECT R1.id, R1.jb, R2.v FROM R1, R2 WHERE R1.jb = R2.jb AND R1.v < "+itoa(v)+" ORDER BY R1.jb")
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// TestDynamicSinglePlanCollapses: when every selectivity assumption
// picks the same plan, no ChoosePlan node is emitted.
func TestDynamicSinglePlanCollapses(t *testing.T) {
	cat, _, st := dynamicFixture(t)
	res, err := relopt.OptimizeDynamic(cat, relopt.DefaultConfig(), st.Tree, st.Required,
		[]float64{0.4, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Alternatives == 1 {
		if _, ok := res.Plan.Op.(*relopt.ChoosePlan); ok {
			t.Fatal("single alternative still wrapped in ChoosePlan")
		}
	}
}

// TestDynamicRequiresParam: a fully specified query is rejected.
func TestDynamicRequiresParam(t *testing.T) {
	cat, _, _ := dynamicFixture(t)
	st, err := sqlish.Parse(cat, "SELECT id FROM R1 WHERE v < 10")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := relopt.OptimizeDynamic(cat, relopt.DefaultConfig(), st.Tree, st.Required, nil); err == nil {
		t.Fatal("expected error for unparameterized query")
	}
}

// TestParamSelectivityAssumption: the optimizer prices parameterized
// predicates with the catalog's assumption.
func TestParamSelectivityAssumption(t *testing.T) {
	cat, _, st := dynamicFixture(t)
	costUnder := func(sel float64) float64 {
		defer func(prev float64) { cat.ParamSelectivity = prev }(cat.ParamSelectivity)
		cat.ParamSelectivity = sel
		opt := core.NewOptimizer(relopt.New(cat, relopt.DefaultConfig()), nil)
		root := opt.InsertQuery(st.Tree)
		plan, err := opt.Optimize(root, st.Required)
		if err != nil || plan == nil {
			t.Fatalf("optimize: %v", err)
		}
		return plan.Cost.(relopt.Cost).Total()
	}
	low, high := costUnder(0.01), costUnder(0.9)
	if low >= high {
		t.Fatalf("estimated cost should grow with assumed selectivity: %.2f vs %.2f", low, high)
	}
}
