package relopt

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// Cost is the relational model's cost ADT: a record of I/O and CPU cost,
// the structure the paper attributes to System R. The unit is "the time
// of one page I/O"; CPU costs are expressed in the same unit through the
// Params weights. The search engine performs all arithmetic and
// comparisons through the interface methods, never looking inside.
type Cost struct {
	// IO is the page-I/O component.
	IO float64
	// CPU is the processor component, in I/O-equivalent units.
	CPU float64
}

var _ core.Cost = Cost{}

// Total collapses the record into a single comparable magnitude.
func (c Cost) Total() float64 { return c.IO + c.CPU }

// Add returns the componentwise sum.
func (c Cost) Add(other core.Cost) core.Cost {
	o := other.(Cost)
	return Cost{IO: c.IO + o.IO, CPU: c.CPU + o.CPU}
}

// Sub returns the componentwise difference; subtracting anything from an
// infinite cost leaves it infinite.
func (c Cost) Sub(other core.Cost) core.Cost {
	if math.IsInf(c.IO, 1) {
		return c
	}
	o := other.(Cost)
	return Cost{IO: c.IO - o.IO, CPU: c.CPU - o.CPU}
}

// Less compares total magnitudes.
func (c Cost) Less(other core.Cost) bool {
	return c.Total() < other.(Cost).Total()
}

// Scale returns the componentwise multiple; guided search uses it to
// relax an infeasible seed limit geometrically. Scaling an infinite cost
// leaves it infinite.
func (c Cost) Scale(factor float64) core.Cost {
	return Cost{IO: c.IO * factor, CPU: c.CPU * factor}
}

var _ core.ScalableCost = Cost{}

// Metric projects the record onto the scalar the comparisons already
// use; the stochastic search policies (core.MetricCost) turn it into
// UCT rewards and floor priors.
func (c Cost) Metric() float64 { return c.Total() }

var _ core.MetricCost = Cost{}

// String renders the record.
func (c Cost) String() string {
	if math.IsInf(c.IO, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.2f(io=%.1f,cpu=%.2f)", c.Total(), c.IO, c.CPU)
}

// Infinite is the unreachable cost used as the default optimization
// limit.
var Infinite = Cost{IO: math.Inf(1), CPU: math.Inf(1)}

// Params are the cost-model weights, all expressed in units of one page
// I/O. The defaults model the paper's setup: both I/O and CPU costs
// count, hash join proceeds without partition files, and sorting is a
// single-level merge.
type Params struct {
	// PageBytes is the storage page size.
	PageBytes int
	// CPUTuple is the cost of producing or copying one tuple.
	CPUTuple float64
	// CPUPred is the cost of one predicate evaluation.
	CPUPred float64
	// CPUCompare is the cost of one comparison during sorting/merging.
	CPUCompare float64
	// CPUHash is the cost of one hash-table insert or probe.
	CPUHash float64
	// SpillIO charges sorting its single-level merge: runs are written
	// once and read once, so SpillIO multiplies the input page count
	// twice (write + read).
	SpillIO float64
	// MemoryPages is the hash work space. The default exceeds every
	// Figure-4 table, so hybrid hash join "proceeds without partition
	// files" exactly as in the paper; experiments that study memory
	// pressure lower it.
	MemoryPages float64
}

// HashSpillIO prices the partition files of a hash operation whose
// build side exceeds the work space: the overflowing fraction of both
// inputs is written and read once.
func HashSpillIO(p Params, buildPages, probePages float64) float64 {
	if buildPages <= p.MemoryPages {
		return 0
	}
	frac := 1 - p.MemoryPages/buildPages
	return 2 * frac * (buildPages + probePages) * p.SpillIO
}

// DefaultParams returns the weights used by the experiments.
func DefaultParams() Params {
	return Params{
		PageBytes:   4096,
		CPUTuple:    0.001,
		CPUPred:     0.0005,
		CPUCompare:  0.0005,
		CPUHash:     0.0008,
		SpillIO:     1.0,
		MemoryPages: 256,
	}
}
