package relopt

import (
	"math"
	"testing"

	"repro/internal/core"
)

// TestParallelSearchMatchesSequential: the task engine over the
// hand-maintained relational model must price the chain query exactly as
// the sequential engine does, unsorted and sorted, guided and unguided,
// at every worker count.
func TestParallelSearchMatchesSequential(t *testing.T) {
	cat, cols := testCatalog(t)
	model := New(cat, DefaultConfig())
	for _, required := range []core.PhysProps{nil, SortedOn(cols["proj.budget"])} {
		for _, guided := range []bool{false, true} {
			base := &core.Options{}
			if guided {
				base.Guidance.SeedPlanner = core.SyntacticSeedPlanner()
			}
			seqOpt := core.NewOptimizer(model, base)
			seqPlan, err := seqOpt.Optimize(seqOpt.InsertQuery(chainQuery(cat, cols)), required)
			if err != nil || seqPlan == nil {
				t.Fatalf("guided=%v sequential: plan=%v err=%v", guided, seqPlan, err)
			}
			want := seqPlan.Cost.(Cost).Total()

			for _, workers := range []int{2, 4, 8} {
				opts := *base
				opts.Search.Workers = workers
				parOpt := core.NewOptimizer(model, &opts)
				parPlan, err := parOpt.Optimize(parOpt.InsertQuery(chainQuery(cat, cols)), required)
				if err != nil || parPlan == nil {
					t.Fatalf("guided=%v workers=%d: plan=%v err=%v", guided, workers, parPlan, err)
				}
				got := parPlan.Cost.(Cost).Total()
				if math.Abs(got-want) > 1e-6*want {
					t.Errorf("guided=%v req=%v workers=%d: cost %.4f, sequential %.4f",
						guided, required, workers, got, want)
				}
			}
		}
	}
}
