package relopt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rel"
)

// Seed planning for guided branch-and-bound. The greedy seeder builds
// one complete plan per query without any search: join the
// cheapest-cardinality pair first, then attach the remaining relations
// by estimated output size, implement every join by hybrid hash join,
// and sort the result if the goal requires an order. Its cost is
// computed with the same formulas the implementation rules charge (the
// *CostProps helpers below are shared with impl.go and enforcers.go), so
// the seed's cost is exactly that of a plan the exhaustive search can
// reach — an upper bound on the optimum, which makes the inclusive
// seeded stage of core's guided search succeed on the first attempt.

// scanCost prices a file scan of a stored relation: one read of its
// pages plus per-tuple output construction.
func (m *Model) scanCost(p *rel.Props) Cost {
	return Cost{
		IO:  p.Pages(m.Cfg.Params.PageBytes),
		CPU: p.Rows * m.Cfg.Params.CPUTuple,
	}
}

// filterCost prices a filter over an input with the given properties:
// one predicate evaluation per input row.
func (m *Model) filterCost(in *rel.Props) Cost {
	return Cost{CPU: in.Rows * m.Cfg.Params.CPUPred}
}

// projectCost prices a standalone projection: one tuple copy per row.
func (m *Model) projectCost(in *rel.Props) Cost {
	return Cost{CPU: in.Rows * m.Cfg.Params.CPUTuple}
}

// mergeJoinCostProps prices a merge-join over sorted inputs: one pass
// over both inputs plus output construction.
func (m *Model) mergeJoinCostProps(lp, rp, op *rel.Props) Cost {
	return Cost{CPU: (lp.Rows+rp.Rows)*m.Cfg.Params.CPUCompare +
		op.Rows*m.Cfg.Params.CPUTuple}
}

// hashJoinCostProps prices a hybrid hash join building on the left
// input: hashing both inputs, output construction, and partition-file
// I/O for the overflow fraction when the build side exceeds the work
// space.
func (m *Model) hashJoinCostProps(lp, rp, op *rel.Props) Cost {
	return Cost{
		IO: HashSpillIO(m.Cfg.Params, lp.Pages(m.Cfg.Params.PageBytes), rp.Pages(m.Cfg.Params.PageBytes)),
		CPU: (lp.Rows+rp.Rows)*m.Cfg.Params.CPUHash +
			op.Rows*m.Cfg.Params.CPUTuple,
	}
}

// sortCost prices the sort enforcer's single-level merge: runs written
// once and read once, with rows (possibly a per-partition fraction)
// compared log(rows) times each.
func (m *Model) sortCost(p *rel.Props, rows float64) Cost {
	return Cost{
		IO:  2 * p.Pages(m.Cfg.Params.PageBytes) * m.Cfg.Params.SpillIO,
		CPU: rows * log2(rows) * m.Cfg.Params.CPUCompare,
	}
}

// add is componentwise cost accumulation for the seeder.
func add(a, b Cost) Cost { return Cost{IO: a.IO + b.IO, CPU: a.CPU + b.CPU} }

// LowerBound implements core.LowerBounder: every physical plan for a
// class reads each of its base relations exactly once through the
// (serial, never cost-scaled) file scan — GET's only implementation —
// so the sum of those scan costs is an admissible floor for any plan of
// the class under any property requirement. Self-overlapping set
// operations scan shared tables more than once, which only widens the
// gap above the floor.
func (m *Model) LowerBound(lp core.LogicalProps) core.Cost {
	p, ok := lp.(*rel.Props)
	if !ok || p.Tables == 0 {
		return nil
	}
	var c Cost
	for _, name := range m.Cat.Tables() {
		t := m.Cat.Table(name)
		if p.Tables&(1<<uint(t.Index)) == 0 {
			continue
		}
		c = add(c, m.scanCost(&rel.Props{Rows: float64(t.Rows), RowBytes: t.RowBytes}))
	}
	return c
}

var _ core.LowerBounder = (*Model)(nil)

// SeedPlanner returns the model's seed planner for core's guided search:
// the greedy join-ordering seeder, falling back to the generic syntactic
// seed (the query as written, algorithm choices only) for query shapes
// the greedy pass does not cover — non-join roots, partitioned goals,
// and disconnected join graphs.
func (m *Model) SeedPlanner() core.SeedPlanner {
	return func(o *core.Optimizer, root core.GroupID, required core.PhysProps) *core.SeedPlan {
		if sp := m.greedySeed(o, root, required); sp != nil {
			// The greedy seed prices a plan it never builds (it may drop
			// intra-component predicates, so materializing it would
			// change query results). Under a budget the search needs a
			// real degradation floor, so attach the syntactic plan — the
			// query as written, correct by construction — while keeping
			// the (usually tighter) greedy cost as the seeded limit.
			// Unbudgeted runs skip the extra pass entirely.
			if o.Budgeted() {
				if syn := o.SyntacticSeed(root, required); syn != nil {
					sp.Plan = syn.Plan
				}
			}
			return sp
		}
		return o.SyntacticSeed(root, required)
	}
}

// seedComp is one connected component of the greedy seeder's working
// set: the logical properties of the relations joined so far and the
// accumulated cost of producing them.
type seedComp struct {
	props *rel.Props
	cost  Cost
	// base is true while the component reads a single base relation —
	// the "composite inner" test under Config.NoCompositeInner.
	base bool
}

// greedySeed builds the greedy hash-join plan for a join-tree query and
// returns its cost, or nil when the query's shape is out of scope.
func (m *Model) greedySeed(o *core.Optimizer, root core.GroupID, required core.PhysProps) *core.SeedPlan {
	rp, ok := required.(*PhysProps)
	if !ok || rp.Part.Kind != PartNone {
		// Partitioned goals need exchange placement; leave those to the
		// syntactic fallback.
		return nil
	}
	memo := o.Memo()
	var comps []seedComp
	var preds []*rel.Join
	if !m.collectJoinTree(memo, root, make(map[core.GroupID]bool), &comps, &preds) {
		return nil
	}
	if len(preds) == 0 || len(comps) < 2 {
		// Single-relation queries gain nothing from join ordering.
		return nil
	}
	factors := len(comps)

	// Greedily merge components: among the predicates that connect two
	// distinct components, take the one whose join produces the fewest
	// rows. Predicates whose columns fall inside one component are
	// dropped — their filtering effect is forgone, which only inflates
	// the seed (the bound stays sound).
	for len(comps) > 1 {
		bi, bj, bp := -1, -1, -1
		var bout *rel.Props
		for pi, j := range preds {
			ci := findComp(comps, j.A)
			cj := findComp(comps, j.B)
			if ci < 0 || cj < 0 || ci == cj {
				continue
			}
			if m.Cfg.NoCompositeInner && !comps[ci].base && !comps[cj].base {
				continue
			}
			out := rel.DeriveProps(m.Cat, j, []core.LogicalProps{comps[ci].props, comps[cj].props})
			if bout == nil || out.Rows < bout.Rows {
				bi, bj, bp, bout = ci, cj, pi, out
			}
		}
		if bout == nil {
			// Disconnected join graph (or no left-deep step remains):
			// out of scope.
			return nil
		}
		l, r := comps[bi], comps[bj]
		if m.Cfg.NoCompositeInner && !r.base {
			// The restricted join algorithms accept composite inputs
			// only on the left.
			l, r = r, l
		}
		merged := seedComp{
			props: bout,
			cost:  add(add(l.cost, r.cost), m.hashJoinCostProps(l.props, r.props, bout)),
		}
		comps[bi] = merged
		comps = append(comps[:bj], comps[bj+1:]...)
		preds = append(preds[:bp], preds[bp+1:]...)
	}

	c := comps[0].cost
	if len(rp.Sort) > 0 {
		c = add(c, m.sortCost(comps[0].props, comps[0].props.Rows))
	}
	return &core.SeedPlan{
		Cost: c,
		Desc: fmt.Sprintf("greedy hash-join order over %d relations", factors),
	}
}

// findComp locates the component whose schema holds the column; the
// catalog gives every column to exactly one base relation, so at most
// one component matches.
func findComp(comps []seedComp, c rel.ColID) int {
	for i := range comps {
		if comps[i].props.HasCol(c) {
			return i
		}
	}
	return -1
}

// collectJoinTree walks a class's original expression tree, splitting it
// into join predicates and non-join factors. Factors must be chains of
// SELECT/PROJECT over GET for the seeder to price them; anything else
// rejects the query. onPath guards against reference cycles in a merged
// memo.
func (m *Model) collectJoinTree(memo *core.Memo, gid core.GroupID, onPath map[core.GroupID]bool, comps *[]seedComp, preds *[]*rel.Join) bool {
	gid = memo.Find(gid)
	if onPath[gid] {
		return false
	}
	g := memo.Group(gid)
	if len(g.Exprs()) == 0 {
		return false
	}
	e := g.Exprs()[0]
	j, ok := e.Op.(*rel.Join)
	if !ok {
		c, ok := m.factorCost(memo, gid, onPath)
		if !ok {
			return false
		}
		*comps = append(*comps, seedComp{
			props: g.LogicalProps().(*rel.Props),
			cost:  c,
			base:  isBaseProps(g.LogicalProps().(*rel.Props)),
		})
		return true
	}
	onPath[gid] = true
	defer delete(onPath, gid)
	*preds = append(*preds, j)
	return m.collectJoinTree(memo, e.Inputs[0], onPath, comps, preds) &&
		m.collectJoinTree(memo, e.Inputs[1], onPath, comps, preds)
}

// isBaseProps reports whether the properties describe a single base
// relation (one bit set in the table set).
func isBaseProps(p *rel.Props) bool {
	return p.Tables != 0 && p.Tables&(p.Tables-1) == 0
}

// factorCost prices one non-join factor — a SELECT/PROJECT chain over a
// GET — with the shared per-operator cost helpers, serial and unordered.
func (m *Model) factorCost(memo *core.Memo, gid core.GroupID, onPath map[core.GroupID]bool) (Cost, bool) {
	gid = memo.Find(gid)
	if onPath[gid] {
		return Cost{}, false
	}
	g := memo.Group(gid)
	if len(g.Exprs()) == 0 {
		return Cost{}, false
	}
	e := g.Exprs()[0]
	switch e.Op.(type) {
	case *rel.Get:
		return m.scanCost(g.LogicalProps().(*rel.Props)), true
	case *rel.Select, *rel.Project:
		onPath[gid] = true
		defer delete(onPath, gid)
		in := memo.Group(memo.Find(e.Inputs[0]))
		inProps := in.LogicalProps().(*rel.Props)
		c, ok := m.factorCost(memo, e.Inputs[0], onPath)
		if !ok {
			return Cost{}, false
		}
		if _, isSel := e.Op.(*rel.Select); isSel {
			return add(c, m.filterCost(inProps)), true
		}
		return add(c, m.projectCost(inProps)), true
	}
	return Cost{}, false
}
