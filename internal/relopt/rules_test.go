package relopt

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/rel"
)

// ruleCatalog builds emp(id,dept,age) ⋈ dept(id,head) fixtures.
func ruleCatalog() (*rel.Catalog, map[string]rel.ColID) {
	cat := rel.NewCatalog()
	cols := map[string]rel.ColID{}
	emp := cat.AddTable("emp", 4000, 100)
	cols["emp.id"] = cat.AddColumn(emp, "id", 4000, 1, 4000)
	cols["emp.dept"] = cat.AddColumn(emp, "dept", 100, 1, 100)
	cols["emp.age"] = cat.AddColumn(emp, "age", 50, 18, 67)
	dept := cat.AddTable("dept", 100, 100)
	cols["dept.id"] = cat.AddColumn(dept, "id", 100, 1, 100)
	cols["dept.head"] = cat.AddColumn(dept, "head", 100, 1, 100)
	return cat, cols
}

// optimizePlan is a small fixture runner.
func optimizePlan(t *testing.T, cat *rel.Catalog, cfg Config, tree *core.ExprTree, required core.PhysProps) *core.Plan {
	t.Helper()
	opt := core.NewOptimizer(New(cat, cfg), nil)
	root := opt.InsertQuery(tree)
	plan, err := opt.Optimize(root, required)
	if err != nil {
		t.Fatal(err)
	}
	if plan == nil {
		t.Fatal("no plan")
	}
	if opt.Stats().ConsistencyViolations != 0 {
		t.Fatal("consistency violations")
	}
	return plan
}

func joinTree(cat *rel.Catalog, cols map[string]rel.ColID) *core.ExprTree {
	return core.Node(rel.NewJoin(cols["emp.dept"], cols["dept.id"]),
		core.Node(&rel.Get{Tab: cat.Table("emp")}),
		core.Node(&rel.Get{Tab: cat.Table("dept")}))
}

// TestMergeJoinQualifiesForSortedOutput is the paper's running example:
// "when optimizing a join expression whose result should be sorted on
// the join attribute, hybrid hash join does not qualify while merge-join
// qualifies with the requirement that its inputs be sorted."
func TestMergeJoinQualifiesForSortedOutput(t *testing.T) {
	cat, cols := ruleCatalog()
	required := SortedOn(cols["emp.dept"])
	plan := optimizePlan(t, cat, DefaultConfig(), joinTree(cat, cols), required)
	var mj, hhjSorted bool
	plan.Walk(func(p *core.Plan) {
		switch p.Op.(type) {
		case *MergeJoin:
			mj = true
		case *HashJoin:
			if p.Delivered.Covers(required) && p == plan {
				hhjSorted = true
			}
		}
	})
	if !mj && plan.Op.Name() != "sort" {
		t.Fatalf("sorted join neither merge-joins nor sorts:\n%s", plan.Format())
	}
	if hhjSorted {
		t.Fatalf("hash join claimed sorted output:\n%s", plan.Format())
	}
}

// TestSortNeverFedByMergeJoinOnSameOrder: the excluding property vector
// provision — merge-join must not be considered as input to the sort
// that establishes the same order.
func TestSortNeverFedByMergeJoinOnSameOrder(t *testing.T) {
	cat, cols := ruleCatalog()
	required := SortedOn(cols["emp.dept"])
	plan := optimizePlan(t, cat, DefaultConfig(), joinTree(cat, cols), required)
	plan.Walk(func(p *core.Plan) {
		srt, ok := p.Op.(*Sort)
		if !ok || len(p.Inputs) != 1 {
			return
		}
		inDelivered := p.Inputs[0].Delivered.(*PhysProps)
		want := &PhysProps{Sort: srt.Order}
		if inDelivered.Covers(want) {
			t.Errorf("sort over an input already delivering %s:\n%s", want, plan.Format())
		}
	})
}

// TestStoredOrderScan: scanning a clustered table satisfies a matching
// sort requirement with no enforcer.
func TestStoredOrderScan(t *testing.T) {
	cat, cols := ruleCatalog()
	cat.Table("emp").Ordered = []rel.ColID{cols["emp.dept"], cols["emp.id"]}
	tree := core.Node(&rel.Get{Tab: cat.Table("emp")})
	plan := optimizePlan(t, cat, DefaultConfig(), tree, SortedOn(cols["emp.dept"]))
	if _, ok := plan.Op.(*FileScan); !ok {
		t.Fatalf("clustered scan should satisfy the order directly:\n%s", plan.Format())
	}
	// A non-prefix requirement still needs a sort.
	plan = optimizePlan(t, cat, DefaultConfig(), tree, SortedOn(cols["emp.id"]))
	if _, ok := plan.Op.(*Sort); !ok {
		t.Fatalf("non-prefix order must be enforced:\n%s", plan.Format())
	}
}

// TestFusedProjectJoin: PROJECT(JOIN) maps to a single join procedure
// with fused projection; with the fused rules disabled, a separate
// project operator appears and the plan costs at least as much.
func TestFusedProjectJoin(t *testing.T) {
	cat, cols := ruleCatalog()
	tree := core.Node(&rel.Project{Cols: []rel.ColID{cols["emp.id"], cols["dept.head"]}},
		joinTree(cat, cols))

	fused := optimizePlan(t, cat, DefaultConfig(), tree, nil)
	if !strings.Contains(fused.String(), ";proj") {
		t.Fatalf("no fused projection:\n%s", fused.Format())
	}

	cfg := DefaultConfig()
	cfg.DisableFusedProject = true
	separate := optimizePlan(t, cat, cfg, tree, nil)
	if strings.Contains(separate.String(), ";proj") {
		t.Fatalf("fused projection appeared though disabled:\n%s", separate.Format())
	}
	if !strings.Contains(separate.String(), "project(") {
		t.Fatalf("no separate project operator:\n%s", separate.Format())
	}
	if separate.Cost.Less(fused.Cost) {
		t.Fatalf("separate projection cheaper than fused: %s < %s", separate.Cost, fused.Cost)
	}
}

// TestNoCompositeInner: the Starburst-style structural restriction
// produces only left-deep joins (every join's right input reads one
// base relation).
func TestNoCompositeInner(t *testing.T) {
	cat, cols := ruleCatalog()
	// Add a third relation to make bushy shapes possible.
	proj := cat.AddTable("proj", 500, 100)
	projHead := cat.AddColumn(proj, "head", 100, 1, 100)
	tree := core.Node(rel.NewJoin(cols["dept.head"], projHead),
		joinTree(cat, cols),
		core.Node(&rel.Get{Tab: cat.Table("proj")}))

	cfg := DefaultConfig()
	cfg.NoCompositeInner = true
	plan := optimizePlan(t, cat, cfg, tree, nil)
	plan.Walk(func(p *core.Plan) {
		switch p.Op.(type) {
		case *MergeJoin, *HashJoin, *NLJoin:
			right := p.Inputs[1]
			tables := right.LogProps.(*rel.Props).Tables
			if tables&(tables-1) != 0 {
				t.Errorf("composite inner in restricted mode:\n%s", plan.Format())
			}
		}
	})
}

// TestNLJoinOnlyWhenEnabled: nested loops appears in plans only with
// the extended algorithm set.
func TestNLJoinOnlyWhenEnabled(t *testing.T) {
	cat, cols := ruleCatalog()
	hasNL := func(cfg Config) bool {
		opt := core.NewOptimizer(New(cat, cfg), nil)
		root := opt.InsertQuery(joinTree(cat, cols))
		if err := opt.Explore(root); err != nil {
			t.Fatal(err)
		}
		for _, r := range New(cat, cfg).ImplementationRules() {
			if r.Name == "join->nl-join" {
				return true
			}
		}
		return false
	}
	if hasNL(DefaultConfig()) {
		t.Fatal("nl-join present in the Figure-4 configuration")
	}
	cfg := DefaultConfig()
	cfg.EnableNLJoin = true
	if !hasNL(cfg) {
		t.Fatal("nl-join missing from the extended configuration")
	}
}

// TestGroupByInterestingOrder: grouping over a clustered input uses the
// sort-based algorithm for free; over a heap it hashes.
func TestGroupByInterestingOrder(t *testing.T) {
	cat, cols := ruleCatalog()
	gb := func() *core.ExprTree {
		return core.Node(&rel.GroupBy{
			GroupCols: []rel.ColID{cols["emp.dept"]},
			Aggs:      []rel.Agg{{Fn: rel.AggCount}},
		}, core.Node(&rel.Get{Tab: cat.Table("emp")}))
	}
	heap := optimizePlan(t, cat, DefaultConfig(), gb(), nil)
	if _, ok := heap.Op.(*HashGroupBy); !ok {
		t.Fatalf("heap grouping should hash:\n%s", heap.Format())
	}
	cat2, cols2 := ruleCatalog()
	cat2.Table("emp").Ordered = []rel.ColID{cols2["emp.dept"]}
	clustered := optimizePlan(t, cat2, DefaultConfig(), core.Node(&rel.GroupBy{
		GroupCols: []rel.ColID{cols2["emp.dept"]},
		Aggs:      []rel.Agg{{Fn: rel.AggCount}},
	}, core.Node(&rel.Get{Tab: cat2.Table("emp")})), nil)
	if _, ok := clustered.Op.(*SortGroupBy); !ok {
		t.Fatalf("clustered grouping should use the sorted algorithm:\n%s", clustered.Format())
	}
}

// TestParallelRequirementPlacesExchange: requiring partitioned output
// forces the exchange enforcer; serial mode rejects the requirement.
func TestParallelRequirementPlacesExchange(t *testing.T) {
	cat, cols := ruleCatalog()
	cfg := DefaultConfig()
	cfg.Parallel = true
	cfg.Degree = 4
	required := HashPartitioned(cols["emp.dept"], 4)
	plan := optimizePlan(t, cat, cfg, joinTree(cat, cols), required)
	found := false
	plan.Walk(func(p *core.Plan) {
		if _, ok := p.Op.(*Exchange); ok {
			found = true
		}
	})
	if !found {
		t.Fatalf("no exchange operator in partitioned plan:\n%s", plan.Format())
	}
	if !plan.Delivered.Covers(required) {
		t.Fatal("partitioning not delivered")
	}

	// Without the parallel model there is no enforcer for partitioning.
	opt := core.NewOptimizer(New(cat, DefaultConfig()), nil)
	root := opt.InsertQuery(joinTree(cat, cols))
	p, err := opt.Optimize(root, required)
	if err != nil {
		t.Fatal(err)
	}
	if p != nil {
		t.Fatalf("serial model satisfied a partitioning requirement:\n%s", p.Format())
	}
}

// TestMergeUnionRidesStoredOrder: UNION of two ordered scans with an
// ORDER BY on the clustering prefix uses merge-union with no sorts —
// the §5 order-aware treatment of set operations.
func TestMergeUnionRidesStoredOrder(t *testing.T) {
	cat := rel.NewCatalog()
	r := cat.AddTable("R", 5000, 80)
	a := cat.AddColumn(r, "a", 5000, 1, 5000)
	b := cat.AddColumn(r, "b", 100, 1, 100)
	r.Ordered = []rel.ColID{a, b}

	tree := core.Node(&rel.Union{},
		core.Node(&rel.Select{Pred: rel.Pred{Col: b, Op: rel.CmpLT, Val: 40}},
			core.Node(&rel.Get{Tab: r})),
		core.Node(&rel.Select{Pred: rel.Pred{Col: b, Op: rel.CmpGT, Val: 70}},
			core.Node(&rel.Get{Tab: r})))

	plan := optimizePlan(t, cat, DefaultConfig(), tree, SortedOn(a))
	if _, ok := plan.Op.(*MergeUnion); !ok {
		t.Fatalf("root = %T, want merge-union riding the stored order:\n%s", plan.Op, plan.Format())
	}
	plan.Walk(func(p *core.Plan) {
		if _, ok := p.Op.(*Sort); ok {
			t.Fatalf("sort in a plan that should ride the clustering:\n%s", plan.Format())
		}
	})
}
