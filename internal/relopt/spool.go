package relopt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/rel"
)

// Multi-query materialization operators. A shared-memo batch
// (core.ParallelOptimizeCtx with Search.ShareMemo) can rewrite a
// subplan used by several queries into one Materialize feeding
// Reuse scans in the other plans; core.MaterializeSharedPlans makes
// that decision against the costs below. Neither operator is produced
// by an implementation rule — they exist only through the post-pass,
// so single-query optimization is unaffected.

// Materialize spools its input's result into a batch-shared buffer
// identified by ID, passing the rows through unchanged (order
// included).
type Materialize struct {
	// ID names the spool within the batch.
	ID core.SpoolID
}

// Name returns "materialize".
func (m *Materialize) Name() string { return "materialize" }

// String renders the operator with its spool ID.
func (m *Materialize) String() string { return fmt.Sprintf("materialize(#%d)", m.ID) }

// Reuse scans the spool a Materialize with the same ID filled earlier
// in the batch. It is a leaf: the subplan it replaces is not executed
// again.
type Reuse struct {
	// ID names the spool within the batch.
	ID core.SpoolID
}

// Name returns "reuse".
func (r *Reuse) Name() string { return "reuse" }

// String renders the operator with its spool ID.
func (r *Reuse) String() string { return fmt.Sprintf("reuse(#%d)", r.ID) }

var (
	_ core.PhysicalOp = (*Materialize)(nil)
	_ core.PhysicalOp = (*Reuse)(nil)
	_ core.Sharer     = (*Model)(nil)
)

// spoolCost prices one sequential pass of a class's result over the
// spool: its pages at spill-I/O weight plus per-tuple CPU. Writing the
// spool and scanning it back are the same pass in opposite directions,
// so Materialize and Reuse share the formula — the asymmetry that makes
// sharing win is that Materialize is paid once while Reuse replaces a
// whole recomputation.
func (m *Model) spoolCost(lp core.LogicalProps) core.Cost {
	p := lp.(*rel.Props)
	return Cost{
		IO:  m.Cfg.Params.SpillIO * p.Pages(m.Cfg.Params.PageBytes),
		CPU: m.Cfg.Params.CPUTuple * p.Rows,
	}
}

// MaterializeCost prices spooling the class's result once.
func (m *Model) MaterializeCost(lp core.LogicalProps) core.Cost { return m.spoolCost(lp) }

// ReuseCost prices one scan of the spooled result.
func (m *Model) ReuseCost(lp core.LogicalProps) core.Cost { return m.spoolCost(lp) }

// BuildMaterialize returns the Materialize operator for a spool.
func (m *Model) BuildMaterialize(id core.SpoolID, lp core.LogicalProps) core.PhysicalOp {
	return &Materialize{ID: id}
}

// BuildReuse returns the Reuse operator for a spool.
func (m *Model) BuildReuse(id core.SpoolID, lp core.LogicalProps) core.PhysicalOp {
	return &Reuse{ID: id}
}
