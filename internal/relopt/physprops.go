// Package relopt is the optimizer the Volcano optimizer generator
// produces for the relational model in internal/rel: transformation
// rules within the logical algebra, implementation rules mapping
// operators to algorithms, enforcers, and the cost and physical property
// ADTs. Linked with the search engine in internal/core it forms a
// complete query optimizer — the one the paper's Figure 4 experiment
// exercises (operators get, select, join; algorithms file scan, filter,
// sort, merge-join, hybrid hash join; sorting modeled as an enforcer).
package relopt

import (
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/rel"
)

// OrderCol is one column of a sort order.
type OrderCol struct {
	// Col is the ordering column.
	Col rel.ColID
	// Desc selects descending order.
	Desc bool
}

// PartKind distinguishes partitioning requirements in the parallel
// model.
type PartKind int8

// Partitioning kinds.
const (
	// PartNone means no partitioning requirement: a serial stream.
	PartNone PartKind = iota
	// PartHash requires hash partitioning on a column list.
	PartHash
)

// Partitioning is the data-placement component of the physical property
// vector, used by the parallel model; exchange is its enforcer.
type Partitioning struct {
	// Kind is the partitioning discipline.
	Kind PartKind
	// Col is the partitioning column for PartHash.
	Col rel.ColID
	// Degree is the number of partitions.
	Degree int
}

// PhysProps is the physical property vector of the relational model:
// sort order plus partitioning. It is an abstract data type to the
// search engine, which touches it only through Equal, Covers, and Hash.
type PhysProps struct {
	// Sort is the required or delivered sort order; empty means none.
	Sort []OrderCol
	// Part is the partitioning; the zero value means none.
	Part Partitioning
}

var _ core.PhysProps = (*PhysProps)(nil)

// Any is the vacuous property vector.
var Any = &PhysProps{}

// SortedOn builds a single-column ascending sort requirement.
func SortedOn(cols ...rel.ColID) *PhysProps {
	order := make([]OrderCol, len(cols))
	for i, c := range cols {
		order[i] = OrderCol{Col: c}
	}
	return &PhysProps{Sort: order}
}

// HashPartitioned builds a hash-partitioning requirement.
func HashPartitioned(col rel.ColID, degree int) *PhysProps {
	return &PhysProps{Part: Partitioning{Kind: PartHash, Col: col, Degree: degree}}
}

// WithPart returns a copy of p with the given partitioning.
func (p *PhysProps) WithPart(part Partitioning) *PhysProps {
	return &PhysProps{Sort: p.Sort, Part: part}
}

// WithoutSort returns a copy of p with no sort requirement.
func (p *PhysProps) WithoutSort() *PhysProps { return &PhysProps{Part: p.Part} }

// WithoutPart returns a copy of p with no partitioning requirement.
func (p *PhysProps) WithoutPart() *PhysProps { return &PhysProps{Sort: p.Sort} }

// IsAny reports whether the vector carries no requirement at all.
func (p *PhysProps) IsAny() bool { return len(p.Sort) == 0 && p.Part.Kind == PartNone }

// Equal reports exact equality of the vectors.
func (p *PhysProps) Equal(other core.PhysProps) bool {
	o := other.(*PhysProps)
	if len(p.Sort) != len(o.Sort) || p.Part != o.Part {
		return false
	}
	for i, c := range p.Sort {
		if c != o.Sort[i] {
			return false
		}
	}
	return true
}

// Covers reports whether a result with the receiver's properties
// satisfies a request for other: the requested sort order must be a
// prefix of the delivered one, and the partitioning must match (a serial
// result satisfies only a serial request).
func (p *PhysProps) Covers(other core.PhysProps) bool {
	o := other.(*PhysProps)
	if len(o.Sort) > len(p.Sort) {
		return false
	}
	for i, c := range o.Sort {
		if p.Sort[i] != c {
			return false
		}
	}
	if o.Part.Kind == PartNone {
		return p.Part.Kind == PartNone
	}
	return p.Part == o.Part
}

// Hash returns a hash consistent with Equal.
func (p *PhysProps) Hash() uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		h ^= v
		h *= 1099511628211
	}
	for _, c := range p.Sort {
		mix(uint64(uint32(c.Col)))
		if c.Desc {
			mix(1)
		}
	}
	mix(uint64(uint8(p.Part.Kind)))
	mix(uint64(uint32(p.Part.Col)))
	mix(uint64(uint32(p.Part.Degree)))
	return h
}

// String renders the vector, e.g. "sort(c3,c7) hash(c3)x4"; the vacuous
// vector renders as "".
func (p *PhysProps) String() string {
	var b strings.Builder
	if len(p.Sort) > 0 {
		b.WriteString("sort(")
		for i, c := range p.Sort {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(colName(c.Col))
			if c.Desc {
				b.WriteString(" desc")
			}
		}
		b.WriteByte(')')
	}
	if p.Part.Kind == PartHash {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString("hash(")
		b.WriteString(colName(p.Part.Col))
		b.WriteByte(')')
		b.WriteByte('x')
		b.WriteString(strconv.Itoa(p.Part.Degree))
	}
	return b.String()
}

func colName(c rel.ColID) string { return "c" + strconv.Itoa(int(c)) }
