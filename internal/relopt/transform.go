package relopt

import (
	"repro/internal/core"
	"repro/internal/rel"
)

// joinCommute is join commutativity: A ⋈ B → B ⋈ A. The Join operator
// stores its column pair canonically, so the commuted expression differs
// only in input order and duplicate derivations collapse in the memo.
func joinCommute() *core.TransformRule {
	return &core.TransformRule{
		Name:    "join-commute",
		Pattern: core.P(rel.KindJoin, core.Leaf(), core.Leaf()),
		Apply: func(ctx *core.RuleContext, b *core.Binding) []*core.ExprTree {
			j := b.Expr.Op.(*rel.Join)
			return []*core.ExprTree{
				core.Node(j, core.ClassRef(b.Children[1].Group), core.ClassRef(b.Children[0].Group)),
			}
		},
		Promise: 1,
	}
}

// joinAssoc is left-to-right join associativity (the paper's Figure 3):
// (A ⋈p1 B) ⋈p2 C → A ⋈p1 (B ⋈p2 C), valid when p2 references only B
// and C. Together with commutativity it generates every join order,
// including bushy trees (composite inner inputs). The new inner join is
// expression "C" of Figure 3: not equivalent to anything in the left
// expression, so the engine creates (or reuses) a class for it.
func joinAssoc() *core.TransformRule {
	pattern := core.P(rel.KindJoin,
		core.P(rel.KindJoin, core.Leaf(), core.Leaf()),
		core.Leaf(),
	)
	condition := func(ctx *core.RuleContext, b *core.Binding) bool {
		top := b.Expr.Op.(*rel.Join)
		inner := b.Children[0]
		bp := ctx.LogProps(inner.Children[1].Group).(*rel.Props)
		cp := ctx.LogProps(b.Children[1].Group).(*rel.Props)
		// Both columns of the top predicate must be available in the
		// new inner join B ⋈ C.
		return (bp.HasCol(top.A) || cp.HasCol(top.A)) &&
			(bp.HasCol(top.B) || cp.HasCol(top.B))
	}
	apply := func(ctx *core.RuleContext, b *core.Binding) []*core.ExprTree {
		top := b.Expr.Op.(*rel.Join)
		innerOp := b.Children[0].Expr.Op.(*rel.Join)
		a := b.Children[0].Children[0].Group
		bb := b.Children[0].Children[1].Group
		c := b.Children[1].Group
		return []*core.ExprTree{
			core.Node(innerOp,
				core.ClassRef(a),
				core.Node(top, core.ClassRef(bb), core.ClassRef(c)),
			),
		}
	}
	return &core.TransformRule{
		Name:      "join-assoc",
		Pattern:   pattern,
		Condition: condition,
		Apply:     apply,
		Promise:   1,
	}
}

// selectPushdown pushes a selection below a join into whichever side
// supplies the predicate's columns: σp(A ⋈ B) → σp(A) ⋈ B.
func selectPushdown() *core.TransformRule {
	pattern := core.P(rel.KindSelect,
		core.P(rel.KindJoin, core.Leaf(), core.Leaf()),
	)
	apply := func(ctx *core.RuleContext, b *core.Binding) []*core.ExprTree {
		sel := b.Expr.Op.(*rel.Select)
		join := b.Children[0].Expr.Op.(*rel.Join)
		l := b.Children[0].Children[0].Group
		r := b.Children[0].Children[1].Group
		lp := ctx.LogProps(l).(*rel.Props)
		rp := ctx.LogProps(r).(*rel.Props)
		cols := []rel.ColID{sel.Pred.Col}
		if sel.Pred.IsColCol() {
			cols = append(cols, sel.Pred.OtherCol)
		}
		var out []*core.ExprTree
		if lp.HasCols(cols) {
			out = append(out, core.Node(join,
				core.Node(sel, core.ClassRef(l)),
				core.ClassRef(r)))
		}
		if rp.HasCols(cols) {
			out = append(out, core.Node(join,
				core.ClassRef(l),
				core.Node(sel, core.ClassRef(r))))
		}
		return out
	}
	return &core.TransformRule{
		Name:    "select-pushdown",
		Pattern: pattern,
		Apply:   apply,
		Promise: 2,
	}
}

// selectCommute swaps two stacked selections: σp(σq(A)) → σq(σp(A)).
// It is the canonical example of a pair of mutually inverse rules; the
// memo's duplicate detection keeps it from looping.
func selectCommute() *core.TransformRule {
	pattern := core.P(rel.KindSelect,
		core.P(rel.KindSelect, core.Leaf()),
	)
	apply := func(ctx *core.RuleContext, b *core.Binding) []*core.ExprTree {
		outer := b.Expr.Op.(*rel.Select)
		inner := b.Children[0].Expr.Op.(*rel.Select)
		in := b.Children[0].Children[0].Group
		return []*core.ExprTree{
			core.Node(inner, core.Node(outer, core.ClassRef(in))),
		}
	}
	return &core.TransformRule{
		Name:    "select-commute",
		Pattern: pattern,
		Apply:   apply,
		Promise: 1,
	}
}

// setCommute is commutativity of a binary set operation (INTERSECT or
// UNION): A op B → B op A.
func setCommute(name string, kind core.OpKind) *core.TransformRule {
	return &core.TransformRule{
		Name:    name,
		Pattern: core.P(kind, core.Leaf(), core.Leaf()),
		Apply: func(ctx *core.RuleContext, b *core.Binding) []*core.ExprTree {
			return []*core.ExprTree{
				core.Node(b.Expr.Op, core.ClassRef(b.Children[1].Group), core.ClassRef(b.Children[0].Group)),
			}
		},
		Promise: 1,
	}
}

// setAssoc is associativity of a set operation: (A op B) op C →
// A op (B op C). Together with commutativity it lets the optimizer
// reorder N-way intersections and unions cost-based — the Section 5
// argument against optimizing set operations with heuristics only.
func setAssoc(name string, kind core.OpKind) *core.TransformRule {
	return &core.TransformRule{
		Name: name,
		Pattern: core.P(kind,
			core.P(kind, core.Leaf(), core.Leaf()),
			core.Leaf()),
		Apply: func(ctx *core.RuleContext, b *core.Binding) []*core.ExprTree {
			inner := b.Children[0]
			return []*core.ExprTree{
				core.Node(inner.Expr.Op,
					core.ClassRef(inner.Children[0].Group),
					core.Node(b.Expr.Op,
						core.ClassRef(inner.Children[1].Group),
						core.ClassRef(b.Children[1].Group))),
			}
		},
		Promise: 1,
	}
}
