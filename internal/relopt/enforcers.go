package relopt

import (
	"repro/internal/core"
	"repro/internal/rel"
)

// sortEnforcer builds the sort enforcer: it establishes a required sort
// order, relaxing the requirement passed to its input. The excluding
// vector it hands the engine is the original requirement, so algorithms
// that already qualified for it (merge-join delivering the very order
// being enforced) are not considered for the sort input — the paper's
// merge-join-under-sort example.
func (m *Model) sortEnforcer() *core.Enforcer {
	return &core.Enforcer{
		Name: "sort",
		Relax: func(ctx *core.RuleContext, lp core.LogicalProps, required core.PhysProps) (relaxed, excluded core.PhysProps, ok bool) {
			rp := reqProps(required)
			if len(rp.Sort) == 0 {
				return nil, nil, false
			}
			return rp.WithoutSort(), required, true
		},
		Cost: func(ctx *core.RuleContext, lp core.LogicalProps, required core.PhysProps) core.Cost {
			p := lp.(*rel.Props)
			rows := p.Rows
			rp := reqProps(required)
			if rp.Part.Kind == PartHash && rp.Part.Degree > 1 {
				// Partition-local sorts work on a fraction of the rows.
				rows /= float64(rp.Part.Degree)
			}
			return m.sortCost(p, rows)
		},
		Delivered: func(ctx *core.RuleContext, required core.PhysProps, input core.PhysProps) core.PhysProps {
			rp := reqProps(required)
			in := input.(*PhysProps)
			return &PhysProps{Sort: rp.Sort, Part: in.Part}
		},
		Build: func(ctx *core.RuleContext, lp core.LogicalProps, required core.PhysProps) core.PhysicalOp {
			return &Sort{Order: reqProps(required).Sort}
		},
		Promise: 1,
	}
}

// exchangeEnforcer builds the exchange enforcer of the parallel model:
// Volcano's network and parallelism operator, which establishes hash
// partitioning. Exchange destroys sort order — an enforcer may ensure
// one property but destroy another — so it only applies when no order is
// required on top of it; an order must be enforced above the exchange.
func (m *Model) exchangeEnforcer() *core.Enforcer {
	return &core.Enforcer{
		Name: "exchange",
		Relax: func(ctx *core.RuleContext, lp core.LogicalProps, required core.PhysProps) (relaxed, excluded core.PhysProps, ok bool) {
			rp := reqProps(required)
			if rp.Part.Kind != PartHash || len(rp.Sort) > 0 {
				return nil, nil, false
			}
			return rp.WithoutPart(), required, true
		},
		Cost: func(ctx *core.RuleContext, lp core.LogicalProps, required core.PhysProps) core.Cost {
			p := lp.(*rel.Props)
			// Every row is hashed, sent, and received once.
			return Cost{CPU: p.Rows * m.Cfg.Params.CPUTuple * 2}
		},
		Build: func(ctx *core.RuleContext, lp core.LogicalProps, required core.PhysProps) core.PhysicalOp {
			return &Exchange{Part: reqProps(required).Part}
		},
		Promise: 1,
	}
}
