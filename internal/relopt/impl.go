package relopt

import (
	"math"

	"repro/internal/core"
	"repro/internal/rel"
)

// props fetches the relational logical properties of a class.
func props(ctx *core.RuleContext, g core.GroupID) *rel.Props {
	return ctx.LogProps(g).(*rel.Props)
}

// reqProps narrows the engine's abstract vector to the relational one.
func reqProps(p core.PhysProps) *PhysProps { return p.(*PhysProps) }

// joinSides resolves which side of a join binding supplies each column
// of the canonicalized predicate pair. ok is false when the binding
// cannot evaluate the predicate (the columns do not span the inputs).
func joinSides(ctx *core.RuleContext, left, right core.GroupID, j *rel.Join) (lc, rc rel.ColID, ok bool) {
	lp, rp := props(ctx, left), props(ctx, right)
	switch {
	case lp.HasCol(j.A) && rp.HasCol(j.B):
		return j.A, j.B, true
	case lp.HasCol(j.B) && rp.HasCol(j.A):
		return j.B, j.A, true
	}
	return 0, 0, false
}

// log2 returns log₂(n), at least 1, for sort cost formulas.
func log2(n float64) float64 {
	if n < 2 {
		return 1
	}
	return math.Log2(n)
}

// model method receivers below build each implementation rule. The rule
// set is the paper's: file scan for GET, filter for SELECT, merge-join
// and hybrid hash join for JOIN — plus projection (separate and fused
// into join procedures), intersection, grouping, and optional
// nested-loops join for the extended examples.

// storedOrder returns the physical properties a scan of the table
// delivers: its clustered sort order, serial placement.
func storedOrder(t *rel.Table) *PhysProps {
	if len(t.Ordered) == 0 {
		return Any
	}
	order := make([]OrderCol, len(t.Ordered))
	for i, c := range t.Ordered {
		order[i] = OrderCol{Col: c}
	}
	return &PhysProps{Sort: order}
}

// fileScanRule implements GET by filescan. The scan delivers the
// relation's stored sort order (none for heaps) and is always serial,
// so it qualifies for any requirement that order covers.
func (m *Model) fileScanRule() *core.ImplRule {
	return &core.ImplRule{
		Name:    "get->filescan",
		Pattern: core.P(rel.KindGet),
		Applicability: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps) ([]core.InputReq, bool) {
			delivered := storedOrder(b.Expr.Op.(*rel.Get).Tab)
			if !delivered.Covers(reqProps(required)) {
				return nil, false
			}
			return []core.InputReq{{}}, true
		},
		Cost: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.Cost {
			return m.scanCost(props(ctx, b.Group))
		},
		Delivered: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq, inputs []core.PhysProps) core.PhysProps {
			return storedOrder(b.Expr.Op.(*rel.Get).Tab)
		},
		Build: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.PhysicalOp {
			return &FileScan{Tab: b.Expr.Op.(*rel.Get).Tab}
		},
		Promise: 2,
	}
}

// filterRule implements SELECT by filter. Filtering preserves every
// physical property, so the requirement passes through to the input and
// whatever the input delivers is delivered.
func (m *Model) filterRule() *core.ImplRule {
	return &core.ImplRule{
		Name:    "select->filter",
		Pattern: core.P(rel.KindSelect, core.Leaf()),
		Applicability: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps) ([]core.InputReq, bool) {
			return []core.InputReq{{Required: []core.PhysProps{required}}}, true
		},
		Cost: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.Cost {
			return m.scaled(required, m.filterCost(props(ctx, b.Children[0].Group)))
		},
		Delivered: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq, inputs []core.PhysProps) core.PhysProps {
			return inputs[0]
		},
		Build: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.PhysicalOp {
			return &Filter{Preds: []rel.Pred{b.Expr.Op.(*rel.Select).Pred}}
		},
		Promise: 2,
	}
}

// projectRule implements PROJECT by a standalone projection operator.
// The projection preserves order on the columns it keeps.
func (m *Model) projectRule() *core.ImplRule {
	return &core.ImplRule{
		Name:    "project->project",
		Pattern: core.P(rel.KindProject, core.Leaf()),
		Applicability: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps) ([]core.InputReq, bool) {
			return []core.InputReq{{Required: []core.PhysProps{required}}}, true
		},
		Cost: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.Cost {
			return m.scaled(required, m.projectCost(props(ctx, b.Children[0].Group)))
		},
		Delivered: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq, inputs []core.PhysProps) core.PhysProps {
			return trimToCols(inputs[0].(*PhysProps), b.Expr.Op.(*rel.Project).Cols)
		},
		Build: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.PhysicalOp {
			return &ProjectOp{Cols: b.Expr.Op.(*rel.Project).Cols}
		},
		Promise: 2,
	}
}

// trimToCols cuts a delivered sort order at the first column outside the
// retained set, since ordering on a discarded column is meaningless to
// consumers.
func trimToCols(p *PhysProps, cols []rel.ColID) *PhysProps {
	keep := make(map[rel.ColID]bool, len(cols))
	for _, c := range cols {
		keep[c] = true
	}
	n := 0
	for _, oc := range p.Sort {
		if !keep[oc.Col] {
			break
		}
		n++
	}
	if n == len(p.Sort) {
		return p
	}
	return &PhysProps{Sort: p.Sort[:n], Part: p.Part}
}

// mergeJoinApplicability is shared by the plain and fused merge-join
// rules: the paper's canonical example. When the join result must be
// sorted on a join attribute, merge-join qualifies with the requirement
// that its inputs be sorted; hybrid hash join does not qualify.
func (m *Model) mergeJoinApplicability(ctx *core.RuleContext, left, right core.GroupID, j *rel.Join, required *PhysProps, projCols []rel.ColID) (core.InputReq, rel.ColID, rel.ColID, bool) {
	lc, rc, ok := joinSides(ctx, left, right, j)
	if !ok {
		return core.InputReq{}, 0, 0, false
	}
	if m.Cfg.NoCompositeInner && !isBaseSide(ctx, right) {
		return core.InputReq{}, 0, 0, false
	}
	// Merge-join guarantees output ordered on the join attribute (both
	// equated columns carry identical values after the join).
	switch {
	case len(required.Sort) == 0:
	case len(required.Sort) == 1 && !required.Sort[0].Desc &&
		(required.Sort[0].Col == lc || required.Sort[0].Col == rc):
		if projCols != nil && !colInList(required.Sort[0].Col, projCols) {
			return core.InputReq{}, 0, 0, false
		}
	default:
		return core.InputReq{}, 0, 0, false
	}
	inPart := [2]Partitioning{}
	switch required.Part.Kind {
	case PartNone:
	case PartHash:
		// A partition-wise merge-join needs compatibly partitioned
		// inputs: each side partitioned on its join column.
		if required.Part.Col != lc && required.Part.Col != rc {
			return core.InputReq{}, 0, 0, false
		}
		inPart[0] = Partitioning{Kind: PartHash, Col: lc, Degree: required.Part.Degree}
		inPart[1] = Partitioning{Kind: PartHash, Col: rc, Degree: required.Part.Degree}
	}
	alt := core.InputReq{Required: []core.PhysProps{
		&PhysProps{Sort: []OrderCol{{Col: lc}}, Part: inPart[0]},
		&PhysProps{Sort: []OrderCol{{Col: rc}}, Part: inPart[1]},
	}}
	return alt, lc, rc, true
}

// isBaseSide reports whether the class reads a single base relation —
// the Starburst-style "no composite inner" restriction used in ablation.
func isBaseSide(ctx *core.RuleContext, g core.GroupID) bool {
	t := props(ctx, g).Tables
	return t != 0 && t&(t-1) == 0
}

func colInList(c rel.ColID, cols []rel.ColID) bool {
	for _, x := range cols {
		if x == c {
			return true
		}
	}
	return false
}

// mergeJoinCost charges one pass over both sorted inputs plus output
// construction.
func (m *Model) mergeJoinCost(ctx *core.RuleContext, out, left, right core.GroupID, required core.PhysProps) core.Cost {
	return m.scaled(required, m.mergeJoinCostProps(props(ctx, left), props(ctx, right), props(ctx, out)))
}

// hashJoinCost charges building on the left input, probing with the
// right, and output construction. With the default work space the build
// fits and hybrid hash join proceeds without partition files, as in the
// paper's experimental setup; under memory pressure the overflow
// fraction of both inputs is partitioned to disk.
func (m *Model) hashJoinCost(ctx *core.RuleContext, out, left, right core.GroupID, required core.PhysProps) core.Cost {
	return m.scaled(required, m.hashJoinCostProps(props(ctx, left), props(ctx, right), props(ctx, out)))
}

// scaled divides CPU work across partitions when the result is produced
// partition-parallel.
func (m *Model) scaled(required core.PhysProps, c Cost) Cost {
	rp := reqProps(required)
	if rp.Part.Kind == PartHash && rp.Part.Degree > 1 {
		c.CPU /= float64(rp.Part.Degree)
	}
	return c
}

// mergeJoinDelivered claims the required vector when one was given, else
// ordering on the left join column.
func mergeJoinDelivered(required *PhysProps, lc rel.ColID) core.PhysProps {
	if len(required.Sort) > 0 {
		return required
	}
	return &PhysProps{Sort: []OrderCol{{Col: lc}}, Part: required.Part}
}

// mergeJoinRule implements JOIN by merge-join.
func (m *Model) mergeJoinRule() *core.ImplRule {
	type sides struct{ lc, rc rel.ColID }
	resolve := func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps) (core.InputReq, sides, bool) {
		j := b.Expr.Op.(*rel.Join)
		alt, lc, rc, ok := m.mergeJoinApplicability(ctx,
			b.Children[0].Group, b.Children[1].Group, j, reqProps(required), nil)
		return alt, sides{lc, rc}, ok
	}
	return &core.ImplRule{
		Name:    "join->merge-join",
		Pattern: core.P(rel.KindJoin, core.Leaf(), core.Leaf()),
		Applicability: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps) ([]core.InputReq, bool) {
			alt, _, ok := resolve(ctx, b, required)
			if !ok {
				return nil, false
			}
			return []core.InputReq{alt}, true
		},
		Cost: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.Cost {
			return m.mergeJoinCost(ctx, b.Group, b.Children[0].Group, b.Children[1].Group, required)
		},
		Delivered: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq, inputs []core.PhysProps) core.PhysProps {
			_, s, _ := resolve(ctx, b, required)
			return mergeJoinDelivered(reqProps(required), s.lc)
		},
		Build: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.PhysicalOp {
			_, s, _ := resolve(ctx, b, required)
			return &MergeJoin{LeftCol: s.lc, RightCol: s.rc}
		},
		Promise: 2,
	}
}

// hashJoinApplicability: hybrid hash join delivers no sort order, so it
// qualifies only when none is required.
func (m *Model) hashJoinApplicability(ctx *core.RuleContext, left, right core.GroupID, j *rel.Join, required *PhysProps) (core.InputReq, rel.ColID, rel.ColID, bool) {
	lc, rc, ok := joinSides(ctx, left, right, j)
	if !ok || len(required.Sort) > 0 {
		return core.InputReq{}, 0, 0, false
	}
	if m.Cfg.NoCompositeInner && !isBaseSide(ctx, right) {
		return core.InputReq{}, 0, 0, false
	}
	inPart := [2]Partitioning{}
	switch required.Part.Kind {
	case PartNone:
	case PartHash:
		if required.Part.Col != lc && required.Part.Col != rc {
			return core.InputReq{}, 0, 0, false
		}
		inPart[0] = Partitioning{Kind: PartHash, Col: lc, Degree: required.Part.Degree}
		inPart[1] = Partitioning{Kind: PartHash, Col: rc, Degree: required.Part.Degree}
	}
	alt := core.InputReq{Required: []core.PhysProps{
		&PhysProps{Part: inPart[0]},
		&PhysProps{Part: inPart[1]},
	}}
	return alt, lc, rc, true
}

// hashJoinRule implements JOIN by hybrid hash join.
func (m *Model) hashJoinRule() *core.ImplRule {
	type sides struct{ lc, rc rel.ColID }
	resolve := func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps) (core.InputReq, sides, bool) {
		j := b.Expr.Op.(*rel.Join)
		alt, lc, rc, ok := m.hashJoinApplicability(ctx,
			b.Children[0].Group, b.Children[1].Group, j, reqProps(required))
		return alt, sides{lc, rc}, ok
	}
	return &core.ImplRule{
		Name:    "join->hybrid-hash-join",
		Pattern: core.P(rel.KindJoin, core.Leaf(), core.Leaf()),
		Applicability: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps) ([]core.InputReq, bool) {
			alt, _, ok := resolve(ctx, b, required)
			if !ok {
				return nil, false
			}
			return []core.InputReq{alt}, true
		},
		Cost: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.Cost {
			return m.hashJoinCost(ctx, b.Group, b.Children[0].Group, b.Children[1].Group, required)
		},
		Build: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.PhysicalOp {
			_, s, _ := resolve(ctx, b, required)
			return &HashJoin{LeftCol: s.lc, RightCol: s.rc}
		},
		Promise: 3,
	}
}

// nlJoinRule implements JOIN by block nested loops. It is excluded from
// the Figure-4 configuration to match the paper's algorithm set.
func (m *Model) nlJoinRule() *core.ImplRule {
	return &core.ImplRule{
		Name:    "join->nl-join",
		Pattern: core.P(rel.KindJoin, core.Leaf(), core.Leaf()),
		Applicability: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps) ([]core.InputReq, bool) {
			rp := reqProps(required)
			if len(rp.Sort) > 0 || rp.Part.Kind != PartNone {
				return nil, false
			}
			j := b.Expr.Op.(*rel.Join)
			if _, _, ok := joinSides(ctx, b.Children[0].Group, b.Children[1].Group, j); !ok {
				return nil, false
			}
			if m.Cfg.NoCompositeInner && !isBaseSide(ctx, b.Children[1].Group) {
				return nil, false
			}
			return []core.InputReq{{Required: []core.PhysProps{Any, Any}}}, true
		},
		Cost: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.Cost {
			lp := props(ctx, b.Children[0].Group)
			rp := props(ctx, b.Children[1].Group)
			op := props(ctx, b.Group)
			return Cost{CPU: lp.Rows*rp.Rows*m.Cfg.Params.CPUPred +
				op.Rows*m.Cfg.Params.CPUTuple}
		},
		Build: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.PhysicalOp {
			j := b.Expr.Op.(*rel.Join)
			lc, rc, _ := joinSides(ctx, b.Children[0].Group, b.Children[1].Group, j)
			return &NLJoin{LeftCol: lc, RightCol: rc}
		},
		Promise: 1,
	}
}

// fusedMergeJoinRule maps PROJECT(JOIN(A,B)) to a single merge-join
// procedure that applies the projection for free: the paper's example of
// an implementation rule spanning multiple logical operators.
func (m *Model) fusedMergeJoinRule() *core.ImplRule {
	pattern := core.P(rel.KindProject, core.P(rel.KindJoin, core.Leaf(), core.Leaf()))
	type sides struct{ lc, rc rel.ColID }
	resolve := func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps) (core.InputReq, sides, bool) {
		join := b.Children[0]
		j := join.Expr.Op.(*rel.Join)
		proj := b.Expr.Op.(*rel.Project)
		alt, lc, rc, ok := m.mergeJoinApplicability(ctx,
			join.Children[0].Group, join.Children[1].Group, j, reqProps(required), proj.Cols)
		return alt, sides{lc, rc}, ok
	}
	return &core.ImplRule{
		Name:    "project+join->merge-join",
		Pattern: pattern,
		Applicability: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps) ([]core.InputReq, bool) {
			alt, _, ok := resolve(ctx, b, required)
			if !ok {
				return nil, false
			}
			return []core.InputReq{alt}, true
		},
		Cost: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.Cost {
			join := b.Children[0]
			return m.mergeJoinCost(ctx, b.Group, join.Children[0].Group, join.Children[1].Group, required)
		},
		Delivered: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq, inputs []core.PhysProps) core.PhysProps {
			_, s, _ := resolve(ctx, b, required)
			return mergeJoinDelivered(reqProps(required), s.lc)
		},
		Build: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.PhysicalOp {
			_, s, _ := resolve(ctx, b, required)
			return &MergeJoin{LeftCol: s.lc, RightCol: s.rc, Proj: b.Expr.Op.(*rel.Project).Cols}
		},
		Promise: 2,
	}
}

// fusedHashJoinRule maps PROJECT(JOIN(A,B)) to a single hybrid hash join
// procedure with a fused projection.
func (m *Model) fusedHashJoinRule() *core.ImplRule {
	pattern := core.P(rel.KindProject, core.P(rel.KindJoin, core.Leaf(), core.Leaf()))
	type sides struct{ lc, rc rel.ColID }
	resolve := func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps) (core.InputReq, sides, bool) {
		join := b.Children[0]
		j := join.Expr.Op.(*rel.Join)
		alt, lc, rc, ok := m.hashJoinApplicability(ctx,
			join.Children[0].Group, join.Children[1].Group, j, reqProps(required))
		return alt, sides{lc, rc}, ok
	}
	return &core.ImplRule{
		Name:    "project+join->hybrid-hash-join",
		Pattern: pattern,
		Applicability: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps) ([]core.InputReq, bool) {
			alt, _, ok := resolve(ctx, b, required)
			if !ok {
				return nil, false
			}
			return []core.InputReq{alt}, true
		},
		Cost: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.Cost {
			join := b.Children[0]
			return m.hashJoinCost(ctx, b.Group, join.Children[0].Group, join.Children[1].Group, required)
		},
		Build: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.PhysicalOp {
			_, s, _ := resolve(ctx, b, required)
			return &HashJoin{LeftCol: s.lc, RightCol: s.rc, Proj: b.Expr.Op.(*rel.Project).Cols}
		},
		Promise: 3,
	}
}

// intersectAlternatives builds the acceptable shared sort orders for
// merge-intersect: for each leading column, the schema's remaining
// columns in order — the paper's R sorted (A,B,C) / S sorted (B,A,C)
// example generalized. Both inputs must be sorted the same way; which
// way does not matter, so each order is one alternative combination.
func intersectAlternatives(schema []rel.ColID, required *PhysProps, single bool) []core.InputReq {
	if required.Part.Kind != PartNone {
		return nil
	}
	var alts []core.InputReq
	for lead := range schema {
		if single && lead != len(schema)-1 {
			// The restricted implementor hardcoded one fixed
			// combination, chosen without knowledge of any table's
			// clustered order.
			continue
		}
		order := make([]OrderCol, 0, len(schema))
		order = append(order, OrderCol{Col: schema[lead]})
		for i, c := range schema {
			if i != lead {
				order = append(order, OrderCol{Col: c})
			}
		}
		shared := &PhysProps{Sort: order}
		if !shared.Covers(required) {
			continue
		}
		alts = append(alts, core.InputReq{Required: []core.PhysProps{shared, shared}})
	}
	return alts
}

// mergeIntersectRule implements INTERSECT by a merge-based algorithm
// accepting any shared input order: multiple alternative input property
// combinations, tried by the generated optimizer while other orders are
// ignored.
func (m *Model) mergeIntersectRule() *core.ImplRule {
	return &core.ImplRule{
		Name:    "intersect->merge-intersect",
		Pattern: core.P(rel.KindIntersect, core.Leaf(), core.Leaf()),
		Applicability: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps) ([]core.InputReq, bool) {
			schema := props(ctx, b.Group).Cols
			alts := intersectAlternatives(schema, reqProps(required), m.Cfg.SingleIntersectOrder)
			return alts, len(alts) > 0
		},
		Cost: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.Cost {
			lp := props(ctx, b.Children[0].Group)
			rp := props(ctx, b.Children[1].Group)
			op := props(ctx, b.Group)
			rows := lp.Rows + rp.Rows
			cols := float64(len(op.Cols))
			return Cost{CPU: rows*m.Cfg.Params.CPUCompare*cols + op.Rows*m.Cfg.Params.CPUTuple}
		},
		Delivered: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq, inputs []core.PhysProps) core.PhysProps {
			return alt.Required[0]
		},
		Build: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.PhysicalOp {
			return &MergeIntersect{Order: alt.Required[0].(*PhysProps).Sort}
		},
		Promise: 2,
	}
}

// hashIntersectRule implements INTERSECT by hashing; no order required
// or delivered.
func (m *Model) hashIntersectRule() *core.ImplRule {
	return &core.ImplRule{
		Name:    "intersect->hash-intersect",
		Pattern: core.P(rel.KindIntersect, core.Leaf(), core.Leaf()),
		Applicability: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps) ([]core.InputReq, bool) {
			if !reqProps(required).IsAny() {
				return nil, false
			}
			return []core.InputReq{{Required: []core.PhysProps{Any, Any}}}, true
		},
		Cost: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.Cost {
			lp := props(ctx, b.Children[0].Group)
			rp := props(ctx, b.Children[1].Group)
			op := props(ctx, b.Group)
			return Cost{
				IO:  HashSpillIO(m.Cfg.Params, lp.Pages(m.Cfg.Params.PageBytes), rp.Pages(m.Cfg.Params.PageBytes)),
				CPU: (lp.Rows+rp.Rows)*m.Cfg.Params.CPUHash + op.Rows*m.Cfg.Params.CPUTuple,
			}
		},
		Build: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.PhysicalOp {
			return &HashIntersect{}
		},
		Promise: 3,
	}
}

// sortGroupByRule implements GROUPBY over input sorted on the grouping
// columns; the output inherits that order.
func (m *Model) sortGroupByRule() *core.ImplRule {
	groupOrder := func(g *rel.GroupBy) []OrderCol {
		order := make([]OrderCol, len(g.GroupCols))
		for i, c := range g.GroupCols {
			order[i] = OrderCol{Col: c}
		}
		return order
	}
	return &core.ImplRule{
		Name:    "groupby->sort-groupby",
		Pattern: core.P(rel.KindGroupBy, core.Leaf()),
		Applicability: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps) ([]core.InputReq, bool) {
			g := b.Expr.Op.(*rel.GroupBy)
			rp := reqProps(required)
			if rp.Part.Kind != PartNone || len(g.GroupCols) == 0 {
				return nil, false
			}
			delivered := &PhysProps{Sort: groupOrder(g)}
			if !delivered.Covers(rp) {
				return nil, false
			}
			return []core.InputReq{{Required: []core.PhysProps{delivered}}}, true
		},
		Cost: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.Cost {
			in := props(ctx, b.Children[0].Group)
			out := props(ctx, b.Group)
			return Cost{CPU: in.Rows*m.Cfg.Params.CPUCompare + out.Rows*m.Cfg.Params.CPUTuple}
		},
		Delivered: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq, inputs []core.PhysProps) core.PhysProps {
			return &PhysProps{Sort: groupOrder(b.Expr.Op.(*rel.GroupBy))}
		},
		Build: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.PhysicalOp {
			g := b.Expr.Op.(*rel.GroupBy)
			return &SortGroupBy{GroupCols: g.GroupCols, Aggs: g.Aggs}
		},
		Promise: 2,
	}
}

// hashGroupByRule implements GROUPBY by hashing; no order required or
// delivered.
func (m *Model) hashGroupByRule() *core.ImplRule {
	return &core.ImplRule{
		Name:    "groupby->hash-groupby",
		Pattern: core.P(rel.KindGroupBy, core.Leaf()),
		Applicability: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps) ([]core.InputReq, bool) {
			if !reqProps(required).IsAny() {
				return nil, false
			}
			return []core.InputReq{{Required: []core.PhysProps{Any}}}, true
		},
		Cost: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.Cost {
			in := props(ctx, b.Children[0].Group)
			out := props(ctx, b.Group)
			return Cost{CPU: in.Rows*m.Cfg.Params.CPUHash + out.Rows*m.Cfg.Params.CPUTuple}
		},
		Build: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.PhysicalOp {
			g := b.Expr.Op.(*rel.GroupBy)
			return &HashGroupBy{GroupCols: g.GroupCols, Aggs: g.Aggs}
		},
		Promise: 3,
	}
}

// mergeUnionRule implements UNION by a merge-based algorithm accepting
// any shared input order, which it preserves — set operations get the
// same order-aware, alternative-rich treatment as joins.
func (m *Model) mergeUnionRule() *core.ImplRule {
	return &core.ImplRule{
		Name:    "union->merge-union",
		Pattern: core.P(rel.KindUnion, core.Leaf(), core.Leaf()),
		Applicability: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps) ([]core.InputReq, bool) {
			schema := props(ctx, b.Group).Cols
			alts := intersectAlternatives(schema, reqProps(required), m.Cfg.SingleIntersectOrder)
			return alts, len(alts) > 0
		},
		Cost: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.Cost {
			lp := props(ctx, b.Children[0].Group)
			rp := props(ctx, b.Children[1].Group)
			op := props(ctx, b.Group)
			rows := lp.Rows + rp.Rows
			cols := float64(len(op.Cols))
			return Cost{CPU: rows*m.Cfg.Params.CPUCompare*cols + op.Rows*m.Cfg.Params.CPUTuple}
		},
		Delivered: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq, inputs []core.PhysProps) core.PhysProps {
			return alt.Required[0]
		},
		Build: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.PhysicalOp {
			return &MergeUnion{Order: alt.Required[0].(*PhysProps).Sort}
		},
		Promise: 2,
	}
}

// hashUnionRule implements UNION by hashing; no order required or
// delivered.
func (m *Model) hashUnionRule() *core.ImplRule {
	return &core.ImplRule{
		Name:    "union->hash-union",
		Pattern: core.P(rel.KindUnion, core.Leaf(), core.Leaf()),
		Applicability: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps) ([]core.InputReq, bool) {
			if !reqProps(required).IsAny() {
				return nil, false
			}
			return []core.InputReq{{Required: []core.PhysProps{Any, Any}}}, true
		},
		Cost: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.Cost {
			lp := props(ctx, b.Children[0].Group)
			rp := props(ctx, b.Children[1].Group)
			op := props(ctx, b.Group)
			return Cost{
				IO:  HashSpillIO(m.Cfg.Params, lp.Pages(m.Cfg.Params.PageBytes), rp.Pages(m.Cfg.Params.PageBytes)),
				CPU: (lp.Rows+rp.Rows)*m.Cfg.Params.CPUHash + op.Rows*m.Cfg.Params.CPUTuple,
			}
		},
		Build: func(ctx *core.RuleContext, b *core.Binding, required core.PhysProps, alt core.InputReq) core.PhysicalOp {
			return &HashUnion{}
		},
		Promise: 3,
	}
}
