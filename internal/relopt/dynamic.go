package relopt

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/rel"
)

// ChoosePlan is the dynamic-plan operator for incompletely specified
// queries, one of the paper's stated requirements ("flexible cost
// models that permit generating dynamic plans"): the query contains a
// parameterized predicate whose constant binds at execution, so the
// optimizer produces one plan per selectivity region and the runtime
// picks among them once the parameter is known.
type ChoosePlan struct {
	// Pred is the parameterized predicate driving the choice.
	Pred rel.Pred
	// Stat holds the predicate column's statistics, used to
	// re-estimate selectivity at run time with the bound value.
	Stat rel.ColStat
	// Cutoffs are ascending selectivity upper bounds; alternative i
	// executes when the estimated selectivity is ≤ Cutoffs[i]. The
	// last cutoff is 1.
	Cutoffs []float64
}

// Name returns "choose-plan".
func (c *ChoosePlan) Name() string { return "choose-plan" }

// String renders the operator.
func (c *ChoosePlan) String() string {
	return fmt.Sprintf("choose-plan(%s; %d alternatives)", c.Pred, len(c.Cutoffs))
}

var _ core.PhysicalOp = (*ChoosePlan)(nil)

// DynamicResult reports a dynamic optimization.
type DynamicResult struct {
	// Plan is the root: either a single plan (every selectivity
	// assumption chose the same one) or a ChoosePlan node whose inputs
	// are the alternatives.
	Plan *core.Plan
	// Buckets are the selectivity assumptions swept.
	Buckets []float64
	// Alternatives counts distinct plans found.
	Alternatives int
}

// OptimizeDynamic optimizes a query containing exactly one parameterized
// predicate under each selectivity assumption in buckets (default:
// 0.01, 0.1, 0.5, 0.9) and combines the distinct winners under a
// ChoosePlan operator. The memo is rebuilt per bucket — the partial
// optimization results depend on the assumed selectivity.
func OptimizeDynamic(cat *rel.Catalog, cfg Config, query *core.ExprTree, required core.PhysProps, buckets []float64) (*DynamicResult, error) {
	if len(buckets) == 0 {
		buckets = []float64{0.01, 0.1, 0.5, 0.9}
	}
	sort.Float64s(buckets)
	pred, ok := findParamPred(query)
	if !ok {
		return nil, fmt.Errorf("relopt: query has no parameterized predicate")
	}
	meta := cat.Column(pred.Col)
	stat := rel.ColStat{Distinct: float64(meta.Distinct), Min: meta.Min, Max: meta.Max}

	defer func(prev float64) { cat.ParamSelectivity = prev }(cat.ParamSelectivity)

	type alt struct {
		plan *core.Plan
		key  string
	}
	var alts []alt
	idxFor := make([]int, len(buckets)) // bucket → alternative index
	for i, sel := range buckets {
		cat.ParamSelectivity = sel
		opt := core.NewOptimizer(New(cat, cfg), nil)
		root := opt.InsertQuery(query)
		plan, err := opt.Optimize(root, required)
		if err != nil {
			return nil, err
		}
		if plan == nil {
			return nil, fmt.Errorf("relopt: no plan under selectivity assumption %g", sel)
		}
		key := plan.String()
		found := -1
		for j, a := range alts {
			if a.key == key {
				found = j
				break
			}
		}
		if found < 0 {
			found = len(alts)
			alts = append(alts, alt{plan: plan, key: key})
		}
		idxFor[i] = found
	}

	if len(alts) == 1 {
		return &DynamicResult{Plan: alts[0].plan, Buckets: buckets, Alternatives: 1}, nil
	}

	// Region boundaries: an alternative covers the buckets that chose
	// it; its cutoff is the midpoint between its last bucket and the
	// next alternative's first.
	cutoffs := make([]float64, len(alts))
	plans := make([]*core.Plan, len(alts))
	for j := range alts {
		plans[j] = alts[j].plan
		last := 0.0
		for i, sel := range buckets {
			if idxFor[i] == j && sel > last {
				last = sel
			}
		}
		next := 1.0
		for i, sel := range buckets {
			if idxFor[i] != j && sel > last && sel < next {
				next = sel
			}
		}
		cutoffs[j] = (last + next) / 2
	}
	cutoffs[len(cutoffs)-1] = 1

	first := alts[0].plan
	root := &core.Plan{
		Op:        &ChoosePlan{Pred: pred, Stat: stat, Cutoffs: cutoffs},
		Inputs:    plans,
		Delivered: first.Delivered,
		Cost:      first.Cost, // representative; the true cost is parameter-dependent
		LocalCost: Cost{},
		Group:     first.Group,
		LogProps:  first.LogProps,
	}
	return &DynamicResult{Plan: root, Buckets: buckets, Alternatives: len(alts)}, nil
}

// findParamPred locates the single parameterized predicate.
func findParamPred(t *core.ExprTree) (rel.Pred, bool) {
	if t.Op != nil {
		if s, ok := t.Op.(*rel.Select); ok && s.Pred.IsParam() {
			return s.Pred, true
		}
	}
	for _, c := range t.Children {
		if p, ok := findParamPred(c); ok {
			return p, true
		}
	}
	return rel.Pred{}, false
}

// ChooseAlternative picks the plan index for a bound parameter value:
// the first alternative whose selectivity region contains the runtime
// estimate.
func (c *ChoosePlan) ChooseAlternative(value int64) int {
	sel := rel.ScalarSelectivity(c.Pred.Op, value, c.Stat)
	for i, cut := range c.Cutoffs {
		if sel <= cut {
			return i
		}
	}
	return len(c.Cutoffs) - 1
}
