package relopt

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/rel"
)

func TestCoversPrefixSemantics(t *testing.T) {
	ab := &PhysProps{Sort: []OrderCol{{Col: 1}, {Col: 2}}}
	a := &PhysProps{Sort: []OrderCol{{Col: 1}}}
	b := &PhysProps{Sort: []OrderCol{{Col: 2}}}
	aDesc := &PhysProps{Sort: []OrderCol{{Col: 1, Desc: true}}}

	cases := []struct {
		have, want *PhysProps
		covers     bool
	}{
		{ab, a, true},     // longer order covers its prefix
		{a, ab, false},    // prefix does not cover the longer order
		{ab, b, false},    // non-prefix column
		{a, Any, true},    // everything covers the vacuous vector
		{Any, a, false},   // the vacuous vector covers nothing sorted
		{a, aDesc, false}, // direction matters
		{ab, ab, true},    // reflexive
	}
	for i, c := range cases {
		if got := c.have.Covers(c.want); got != c.covers {
			t.Errorf("case %d: %q covers %q = %v, want %v", i, c.have, c.want, got, c.covers)
		}
	}
}

func TestCoversPartitioning(t *testing.T) {
	part := HashPartitioned(3, 4)
	sortPart := &PhysProps{Sort: []OrderCol{{Col: 1}}, Part: Partitioning{Kind: PartHash, Col: 3, Degree: 4}}
	if !part.Covers(part) || part.Covers(Any) {
		t.Fatal("a partitioned stream is not serial")
	}
	if Any.Covers(part) {
		t.Fatal("serial does not cover partitioned")
	}
	other := HashPartitioned(3, 8)
	if part.Covers(other) || other.Covers(part) {
		t.Fatal("different degrees are incompatible")
	}
	if !sortPart.Covers(part) {
		t.Fatal("sorted partitioned stream covers the bare partitioning")
	}
}

func TestEqualAndHash(t *testing.T) {
	a1 := SortedOn(1)
	a2 := SortedOn(1)
	b := SortedOn(2)
	if !a1.Equal(a2) || a1.Hash() != a2.Hash() {
		t.Fatal("equal vectors must hash equally")
	}
	if a1.Equal(b) {
		t.Fatal("different vectors compare equal")
	}
	if a1.Equal(a1.WithPart(Partitioning{Kind: PartHash, Col: 1, Degree: 2})) {
		t.Fatal("partitioning ignored by Equal")
	}
}

func TestDerivedVectors(t *testing.T) {
	p := &PhysProps{
		Sort: []OrderCol{{Col: 5}},
		Part: Partitioning{Kind: PartHash, Col: 5, Degree: 2},
	}
	if len(p.WithoutSort().Sort) != 0 || p.WithoutSort().Part != p.Part {
		t.Fatal("WithoutSort broken")
	}
	if p.WithoutPart().Part.Kind != PartNone || len(p.WithoutPart().Sort) != 1 {
		t.Fatal("WithoutPart broken")
	}
	if !Any.IsAny() || p.IsAny() {
		t.Fatal("IsAny broken")
	}
	if s := p.String(); s == "" {
		t.Fatal("String empty for non-vacuous vector")
	}
	if Any.String() != "" {
		t.Fatal("vacuous vector should render empty")
	}
}

// randProps generates random property vectors for quick checks.
type randProps struct{ p *PhysProps }

func (randProps) Generate(r *rand.Rand, _ int) reflect.Value {
	p := &PhysProps{}
	for i, n := 0, r.Intn(3); i < n; i++ {
		p.Sort = append(p.Sort, OrderCol{Col: rel.ColID(1 + r.Intn(4)), Desc: r.Intn(2) == 1})
	}
	if r.Intn(2) == 1 {
		p.Part = Partitioning{Kind: PartHash, Col: rel.ColID(1 + r.Intn(4)), Degree: 2 + r.Intn(3)}
	}
	return reflect.ValueOf(randProps{p})
}

// TestQuickCoverLaws: Covers is reflexive and transitive, and Equal
// implies mutual covering and hash equality.
func TestQuickCoverLaws(t *testing.T) {
	check := func(a, b, c randProps) bool {
		if !a.p.Covers(a.p) {
			return false
		}
		if a.p.Covers(b.p) && b.p.Covers(c.p) && !a.p.Covers(c.p) {
			return false
		}
		if a.p.Equal(b.p) {
			if !a.p.Covers(b.p) || !b.p.Covers(a.p) || a.p.Hash() != b.p.Hash() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCostArithmetic(t *testing.T) {
	a := Cost{IO: 2, CPU: 1}
	b := Cost{IO: 1, CPU: 0.5}
	if got := a.Add(b).(Cost); got.IO != 3 || got.CPU != 1.5 {
		t.Fatalf("Add = %+v", got)
	}
	if got := a.Sub(b).(Cost); got.IO != 1 || got.CPU != 0.5 {
		t.Fatalf("Sub = %+v", got)
	}
	if !b.Less(a) || a.Less(b) {
		t.Fatal("Less broken")
	}
	if !math.IsInf(Infinite.Sub(a).(Cost).IO, 1) {
		t.Fatal("infinite minus finite must stay infinite")
	}
	if a.String() == "" || Infinite.String() != "inf" {
		t.Fatal("cost rendering broken")
	}
}

func TestHashSpillIO(t *testing.T) {
	p := DefaultParams()
	if got := HashSpillIO(p, 100, 100); got != 0 {
		t.Fatalf("build within memory should not spill, got %f", got)
	}
	p.MemoryPages = 50
	got := HashSpillIO(p, 100, 200)
	want := 2 * 0.5 * 300.0 // half of both inputs written and read
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("spill = %f, want %f", got, want)
	}
}
