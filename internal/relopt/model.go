package relopt

import (
	"math"
	"math/bits"

	"repro/internal/core"
	"repro/internal/rel"
)

// Config selects the algorithm set and cost weights of the generated
// optimizer. The zero value plus DefaultParams is the paper's Figure-4
// configuration: operators get, select, and join; algorithms file scan,
// filter, merge-join, and hybrid hash join; sort modeled as an enforcer;
// all bushy plans permitted.
type Config struct {
	// Params are the cost-model weights.
	Params Params
	// EnableNLJoin adds block nested-loops join to the algorithm set.
	EnableNLJoin bool
	// NoCompositeInner restricts join algorithms to left-deep trees
	// (no composite inner inputs), mirroring Starburst's structural
	// search-space parameter. The logical space is unchanged; the
	// restriction is imposed by implementation-rule condition code.
	NoCompositeInner bool
	// Parallel adds the exchange enforcer and partition-parallel
	// algorithm variants.
	Parallel bool
	// Degree is the partition count used by the parallel model.
	Degree int
	// DisableFusedProject removes the project+join fused procedures,
	// for the ablation that measures the value of multi-operator
	// implementation rules.
	DisableFusedProject bool
	// SingleIntersectOrder restricts merge-intersect to the schema
	// order instead of offering every shared sort order as an
	// alternative input property combination — the ablation for the
	// paper's multiple-alternatives feature.
	SingleIntersectOrder bool
	// NoSetReorder removes commutativity and associativity of
	// INTERSECT and UNION, freezing the written order of N-way set
	// operations — the Starburst-style heuristic treatment Section 5
	// criticizes, kept as an ablation baseline.
	NoSetReorder bool
}

// DefaultConfig returns the Figure-4 configuration.
func DefaultConfig() Config {
	return Config{Params: DefaultParams()}
}

// Model is the relational data model description handed to the search
// engine: the operator sets, rules, enforcers, and ADT glue that the
// optimizer generator would translate from a model specification. (The
// repository's generator, internal/gen, emits exactly this wiring from
// testdata/relational.model; this hand-maintained copy is the linked-in
// equivalent.)
type Model struct {
	// Cat is the catalog queries are optimized against.
	Cat *rel.Catalog
	// Cfg is the model configuration.
	Cfg Config

	trules []*core.TransformRule
	irules []*core.ImplRule
	enfs   []*core.Enforcer
}

var _ core.Model = (*Model)(nil)

// New builds the model for a catalog and configuration.
func New(cat *rel.Catalog, cfg Config) *Model {
	if cfg.Params.PageBytes == 0 {
		cfg.Params = DefaultParams()
	}
	if cfg.Parallel && cfg.Degree < 2 {
		cfg.Degree = 4
	}
	m := &Model{Cat: cat, Cfg: cfg}

	m.trules = []*core.TransformRule{
		joinCommute(),
		joinAssoc(),
		selectPushdown(),
		selectCommute(),
	}
	if !cfg.NoSetReorder {
		m.trules = append(m.trules,
			setCommute("intersect-commute", rel.KindIntersect),
			setAssoc("intersect-assoc", rel.KindIntersect),
			setCommute("union-commute", rel.KindUnion),
			setAssoc("union-assoc", rel.KindUnion),
		)
	}

	m.irules = []*core.ImplRule{
		m.fileScanRule(),
		m.filterRule(),
		m.projectRule(),
		m.hashJoinRule(),
		m.mergeJoinRule(),
		m.mergeIntersectRule(),
		m.hashIntersectRule(),
		m.mergeUnionRule(),
		m.hashUnionRule(),
		m.sortGroupByRule(),
		m.hashGroupByRule(),
	}
	if !cfg.DisableFusedProject {
		m.irules = append(m.irules, m.fusedMergeJoinRule(), m.fusedHashJoinRule())
	}
	if cfg.EnableNLJoin {
		m.irules = append(m.irules, m.nlJoinRule())
	}

	m.enfs = []*core.Enforcer{m.sortEnforcer()}
	if cfg.Parallel {
		m.enfs = append(m.enfs, m.exchangeEnforcer())
	}
	return m
}

// Name returns "relational".
func (m *Model) Name() string { return "relational" }

// DeriveLogicalProps derives schema, cardinality, and statistics; it is
// the model's property function for every logical operator and
// encapsulates selectivity estimation.
func (m *Model) DeriveLogicalProps(op core.LogicalOp, inputs []core.LogicalProps) core.LogicalProps {
	return rel.DeriveProps(m.Cat, op, inputs)
}

// TransformationRules returns the logical-algebra equivalences.
func (m *Model) TransformationRules() []*core.TransformRule { return m.trules }

// ImplementationRules returns the operator-to-algorithm mappings.
func (m *Model) ImplementationRules() []*core.ImplRule { return m.irules }

// Enforcers returns the property enforcers.
func (m *Model) Enforcers() []*core.Enforcer { return m.enfs }

// AnyProps returns the vacuous physical property vector.
func (m *Model) AnyProps() core.PhysProps { return Any }

// ZeroCost returns the additive identity of the cost ADT.
func (m *Model) ZeroCost() core.Cost { return Cost{} }

// InfiniteCost returns the unreachable cost.
func (m *Model) InfiniteCost() core.Cost { return Infinite }

var (
	_ core.Commuter  = (*Model)(nil)
	_ core.Versioned = (*Model)(nil)
)

// CommutativeInputs declares the operators whose inputs the rule set
// proves order-insensitive: JOIN (join-commute), INTERSECT, and UNION
// (set-commute, unless NoSetReorder freezes the written order). Query
// fingerprints treat permuted inputs of these operators as the same
// query, exactly as the memo collapses their derivations.
func (m *Model) CommutativeInputs(op core.LogicalOp) bool {
	switch op.Kind() {
	case rel.KindJoin:
		return true
	case rel.KindIntersect, rel.KindUnion:
		return !m.Cfg.NoSetReorder
	}
	return false
}

// Version returns the model's version token: the catalog version mixed
// with a fingerprint of the configuration (algorithm set and cost
// weights). Any change that could alter a plan or its cost — schema or
// statistics registration, a catalog BumpVersion, different Config —
// yields a different token, which orphans stale plan-cache entries.
func (m *Model) Version() uint64 {
	h := mix64(0x9E3779B185EBCA87, m.Cat.Version())
	p := m.Cfg.Params
	for _, f := range []float64{
		float64(p.PageBytes), p.CPUTuple, p.CPUPred, p.CPUCompare,
		p.CPUHash, p.SpillIO, p.MemoryPages,
	} {
		h = mix64(h, math.Float64bits(f))
	}
	flags := uint64(0)
	for i, b := range []bool{
		m.Cfg.EnableNLJoin, m.Cfg.NoCompositeInner, m.Cfg.Parallel,
		m.Cfg.DisableFusedProject, m.Cfg.SingleIntersectOrder, m.Cfg.NoSetReorder,
	} {
		if b {
			flags |= 1 << uint(i)
		}
	}
	h = mix64(h, flags)
	return mix64(h, uint64(m.Cfg.Degree))
}

// mix64 folds v into h with a rotate-multiply step strong enough for a
// version token (not a general-purpose hash).
func mix64(h, v uint64) uint64 {
	h ^= v
	h = bits.RotateLeft64(h, 31)
	return h * 0xff51afd7ed558ccd
}
