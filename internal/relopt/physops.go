package relopt

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/rel"
)

// FileScan reads a stored relation front to back. It is the
// implementation algorithm for GET.
type FileScan struct {
	// Tab is the relation scanned.
	Tab *rel.Table
}

// Name returns "filescan".
func (f *FileScan) Name() string { return "filescan" }

// String renders the operator with its relation.
func (f *FileScan) String() string { return "filescan(" + f.Tab.Name + ")" }

// Filter applies predicate conjuncts to a stream. It implements SELECT
// and preserves its input's physical properties.
type Filter struct {
	// Preds are the conjuncts, all of which must hold.
	Preds []rel.Pred
}

// Name returns "filter".
func (f *Filter) Name() string { return "filter" }

// String renders the operator with its conjuncts.
func (f *Filter) String() string {
	parts := make([]string, len(f.Preds))
	for i, p := range f.Preds {
		parts[i] = p.String()
	}
	return "filter(" + strings.Join(parts, " and ") + ")"
}

// ProjectOp narrows the schema to a column list.
type ProjectOp struct {
	// Cols is the output column list.
	Cols []rel.ColID
}

// Name returns "project".
func (p *ProjectOp) Name() string { return "project" }

// String renders the operator with its columns.
func (p *ProjectOp) String() string {
	var b strings.Builder
	b.WriteString("project(")
	for i, c := range p.Cols {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "c%d", c)
	}
	b.WriteByte(')')
	return b.String()
}

// MergeJoin joins two streams sorted on the join columns. When Proj is
// non-nil the join procedure also applies a projection — the paper's
// example of mapping multiple logical operators (join followed by
// projection without duplicate removal) to a single physical operator.
type MergeJoin struct {
	// LeftCol and RightCol are the side-resolved equated columns.
	LeftCol, RightCol rel.ColID
	// Proj, when non-nil, is the fused projection's output columns.
	Proj []rel.ColID
}

// Name returns "merge-join".
func (m *MergeJoin) Name() string { return "merge-join" }

// String renders the operator with its predicate.
func (m *MergeJoin) String() string {
	s := fmt.Sprintf("merge-join(c%d=c%d", m.LeftCol, m.RightCol)
	if m.Proj != nil {
		s += ";proj"
	}
	return s + ")"
}

// HashJoin is hybrid hash join: the left input builds, the right input
// probes, proceeding without partition files as in the paper's setup.
type HashJoin struct {
	// LeftCol and RightCol are the side-resolved equated columns.
	LeftCol, RightCol rel.ColID
	// Proj, when non-nil, is the fused projection's output columns.
	Proj []rel.ColID
}

// Name returns "hybrid-hash-join".
func (h *HashJoin) Name() string { return "hybrid-hash-join" }

// String renders the operator with its predicate.
func (h *HashJoin) String() string {
	s := fmt.Sprintf("hybrid-hash-join(c%d=c%d", h.LeftCol, h.RightCol)
	if h.Proj != nil {
		s += ";proj"
	}
	return s + ")"
}

// NLJoin is block nested-loops join, usable for any join predicate. It
// is disabled in the Figure-4 configuration, which uses the paper's
// algorithm set exactly.
type NLJoin struct {
	// LeftCol and RightCol are the side-resolved equated columns.
	LeftCol, RightCol rel.ColID
}

// Name returns "nl-join".
func (n *NLJoin) Name() string { return "nl-join" }

// String renders the operator with its predicate.
func (n *NLJoin) String() string {
	return fmt.Sprintf("nl-join(c%d=c%d)", n.LeftCol, n.RightCol)
}

// Sort is the sort enforcer: it performs no logical data manipulation
// but establishes a sort order required by subsequent algorithms.
type Sort struct {
	// Order is the produced sort order.
	Order []OrderCol
}

// Name returns "sort".
func (s *Sort) Name() string { return "sort" }

// String renders the enforcer with its order.
func (s *Sort) String() string {
	var b strings.Builder
	b.WriteString("sort(")
	for i, c := range s.Order {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "c%d", c.Col)
		if c.Desc {
			b.WriteString(" desc")
		}
	}
	b.WriteByte(')')
	return b.String()
}

// MergeIntersect intersects two streams sorted identically on all
// columns; any shared order qualifies, which is why its implementation
// rule returns multiple alternative input property combinations.
type MergeIntersect struct {
	// Order is the shared sort order of both inputs.
	Order []OrderCol
}

// Name returns "merge-intersect".
func (m *MergeIntersect) Name() string { return "merge-intersect" }

// String renders the operator with its order.
func (m *MergeIntersect) String() string {
	var b strings.Builder
	b.WriteString("merge-intersect(")
	for i, c := range m.Order {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "c%d", c.Col)
	}
	b.WriteByte(')')
	return b.String()
}

// MergeUnion unions two streams sorted identically on all columns,
// eliminating duplicates on the fly and preserving the shared order.
type MergeUnion struct {
	// Order is the shared sort order of both inputs.
	Order []OrderCol
}

// Name returns "merge-union".
func (m *MergeUnion) Name() string { return "merge-union" }

// String renders the operator with its order.
func (m *MergeUnion) String() string {
	var b strings.Builder
	b.WriteString("merge-union(")
	for i, c := range m.Order {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "c%d", c.Col)
	}
	b.WriteByte(')')
	return b.String()
}

// HashUnion unions two streams via a hash set; no input order is
// required or delivered.
type HashUnion struct{}

// Name returns "hash-union".
func (*HashUnion) Name() string { return "hash-union" }

// String returns "hash-union".
func (*HashUnion) String() string { return "hash-union" }

// HashIntersect intersects two streams via a hash table; no input order
// is required.
type HashIntersect struct{}

// Name returns "hash-intersect".
func (*HashIntersect) Name() string { return "hash-intersect" }

// String returns "hash-intersect".
func (*HashIntersect) String() string { return "hash-intersect" }

// SortGroupBy groups a stream already sorted on the grouping columns.
type SortGroupBy struct {
	// GroupCols are the grouping columns.
	GroupCols []rel.ColID
	// Aggs are the aggregates computed per group.
	Aggs []rel.Agg
}

// Name returns "sort-groupby".
func (s *SortGroupBy) Name() string { return "sort-groupby" }

// String renders the operator.
func (s *SortGroupBy) String() string { return groupByString("sort-groupby", s.GroupCols, s.Aggs) }

// HashGroupBy groups an unordered stream via a hash table.
type HashGroupBy struct {
	// GroupCols are the grouping columns.
	GroupCols []rel.ColID
	// Aggs are the aggregates computed per group.
	Aggs []rel.Agg
}

// Name returns "hash-groupby".
func (h *HashGroupBy) Name() string { return "hash-groupby" }

// String renders the operator.
func (h *HashGroupBy) String() string { return groupByString("hash-groupby", h.GroupCols, h.Aggs) }

func groupByString(name string, cols []rel.ColID, aggs []rel.Agg) string {
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('(')
	for i, c := range cols {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "c%d", c)
	}
	for _, a := range aggs {
		fmt.Fprintf(&b, ";%s(c%d)", a.Fn, a.Col)
	}
	b.WriteByte(')')
	return b.String()
}

// Exchange is the partitioning enforcer of the parallel model: Volcano's
// network and parallelism operator. It repartitions its input across
// Degree streams by hashing Col — enforcing the partitioning property
// while destroying any sort order, the paper's example of an enforcer
// that ensures one property but destroys another.
type Exchange struct {
	// Part is the partitioning established.
	Part Partitioning
}

// Name returns "exchange".
func (e *Exchange) Name() string { return "exchange" }

// String renders the enforcer with its partitioning.
func (e *Exchange) String() string {
	return fmt.Sprintf("exchange(hash c%d x%d)", e.Part.Col, e.Part.Degree)
}

var (
	_ core.PhysicalOp = (*FileScan)(nil)
	_ core.PhysicalOp = (*Filter)(nil)
	_ core.PhysicalOp = (*ProjectOp)(nil)
	_ core.PhysicalOp = (*MergeJoin)(nil)
	_ core.PhysicalOp = (*HashJoin)(nil)
	_ core.PhysicalOp = (*NLJoin)(nil)
	_ core.PhysicalOp = (*Sort)(nil)
	_ core.PhysicalOp = (*MergeIntersect)(nil)
	_ core.PhysicalOp = (*HashIntersect)(nil)
	_ core.PhysicalOp = (*MergeUnion)(nil)
	_ core.PhysicalOp = (*HashUnion)(nil)
	_ core.PhysicalOp = (*SortGroupBy)(nil)
	_ core.PhysicalOp = (*HashGroupBy)(nil)
	_ core.PhysicalOp = (*Exchange)(nil)
)
