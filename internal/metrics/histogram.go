package metrics

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets is the number of power-of-two latency buckets: bucket i
// holds observations in [2^(i-1), 2^i) microseconds (bucket 0 holds
// sub-microsecond observations), so 40 buckets cover ~6 days.
const histBuckets = 40

// Histogram is a concurrency-safe log-bucketed latency histogram.
// Observe is wait-free (one atomic add per bucket and per aggregate),
// so request paths can record into a shared instance without a lock.
// The zero value is ready to use.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sumNS   atomic.Int64
	maxNS   atomic.Int64
}

// Observe records one latency.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := bits.Len64(uint64(d.Microseconds()))
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(d))
	for {
		old := h.maxNS.Load()
		if int64(d) <= old || h.maxNS.CompareAndSwap(old, int64(d)) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile returns an estimate of the q-th latency quantile
// (0 < q <= 1), linearly interpolated inside the holding bucket. It
// returns 0 when nothing was observed.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if seen+n >= rank {
			// Bucket i spans [lo, hi) microseconds. Interpolation can
			// overshoot the true maximum in the top occupied bucket, so
			// clamp to it.
			lo := int64(0)
			if i > 0 {
				lo = int64(1) << (i - 1)
			}
			hi := int64(1) << i
			frac := float64(rank-seen) / float64(n)
			us := float64(lo) + frac*float64(hi-lo)
			d := time.Duration(us * float64(time.Microsecond))
			if max := time.Duration(h.maxNS.Load()); d > max {
				d = max
			}
			return d
		}
		seen += n
	}
	return time.Duration(h.maxNS.Load())
}

// Mean returns the mean observed latency.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNS.Load() / n)
}

// Max returns the largest observed latency.
func (h *Histogram) Max() time.Duration { return time.Duration(h.maxNS.Load()) }

// Latency is the JSON-stable summary of a Histogram.
type Latency struct {
	Count  int64   `json:"count"`
	MeanUS float64 `json:"mean_us"`
	P50US  int64   `json:"p50_us"`
	P95US  int64   `json:"p95_us"`
	P99US  int64   `json:"p99_us"`
	MaxUS  int64   `json:"max_us"`
}

// Summary snapshots the histogram.
func (h *Histogram) Summary() Latency {
	return Latency{
		Count:  h.count.Load(),
		MeanUS: float64(h.Mean().Nanoseconds()) / 1e3,
		P50US:  h.Quantile(0.50).Microseconds(),
		P95US:  h.Quantile(0.95).Microseconds(),
		P99US:  h.Quantile(0.99).Microseconds(),
		MaxUS:  h.Max().Microseconds(),
	}
}
