// Package metrics is the one JSON-stable observability schema for the
// serving stack. It merges the three counter families the repository
// grew separately — the optimizer's core.Stats, the plan cache's
// plancache.Counters, and the executor's exec.Counters — into a single
// Snapshot, so the volcano-serve /metrics endpoint, the repl's \stats
// command, and volcano-bench's serve experiment all render the same
// struct instead of three hand-rolled dumps.
//
// core.Stats itself is not JSON-stable (it carries a Cost interface
// and error values); Search is its wire projection, with costs and
// stop reasons rendered as strings and per-run booleans widened to
// cumulative counts so snapshots aggregate across requests.
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/plancache"
)

// Snapshot is one observability snapshot. Sections a producer does not
// track are nil and omitted from the JSON rendering.
type Snapshot struct {
	// Search aggregates optimizer search counters.
	Search *Search `json:"search,omitempty"`
	// Cache is the plan cache's counter snapshot.
	Cache *plancache.Counters `json:"cache,omitempty"`
	// Exec is the executor's cumulative counter snapshot.
	Exec *exec.Counters `json:"exec,omitempty"`
	// Serve is the daemon's admission and latency section, filled only
	// by volcano-serve.
	Serve *Serve `json:"serve,omitempty"`
}

// Search is the JSON-stable projection of core.Stats. Counter fields
// sum across optimizations (see Merge), so the same schema serves one
// repl query and a daemon's lifetime total.
type Search struct {
	Optimizations int64 `json:"optimizations"`

	Groups        int64 `json:"groups"`
	Exprs         int64 `json:"exprs"`
	Merges        int64 `json:"merges"`
	PeakMemoBytes int64 `json:"peak_memo_bytes"`

	MatchCalls  int64 `json:"match_calls"`
	Bindings    int64 `json:"bindings"`
	RulesFired  int64 `json:"rules_fired"`
	MovesReused int64 `json:"moves_reused"`

	GoalsOptimized int64 `json:"goals_optimized"`
	AlgorithmMoves int64 `json:"algorithm_moves"`
	EnforcerMoves  int64 `json:"enforcer_moves"`
	Pruned         int64 `json:"pruned"`
	MovesSkipped   int64 `json:"moves_skipped"`
	WinnerHits     int64 `json:"winner_hits"`
	FailureHits    int64 `json:"failure_hits"`
	GoalsPruned    int64 `json:"goals_pruned"`

	// Episodes / RolloutCommits count stochastic-policy work: completed
	// rollout episodes and winners that rollouts committed into the
	// memo. Zero for exhaustive searches and omitted from the JSON.
	Episodes       int64 `json:"episodes,omitempty"`
	RolloutCommits int64 `json:"rollout_commits,omitempty"`

	SearchWorkers int64 `json:"search_workers"`
	TasksRun      int64 `json:"tasks_run"`
	TasksParked   int64 `json:"tasks_parked"`

	SharedGroups  int64 `json:"shared_groups"`
	SharedWinners int64 `json:"shared_winners"`

	// SeedCost is the last guided run's seed-plan cost rendering;
	// empty for unguided runs.
	SeedCost    string `json:"seed_cost,omitempty"`
	LimitStages int64  `json:"limit_stages"`

	ConsistencyViolations int64 `json:"consistency_violations"`

	// CacheHits / Coalesced / Degraded / AnytimeFallbacks count
	// optimizations by how they were served: from the plan cache, by
	// sharing an in-flight identical search, stopped by a budget, and
	// answered by the anytime fallback ladder. FromStats sets each to
	// 0 or 1; Merge makes them cumulative.
	CacheHits        int64 `json:"cache_hits"`
	Coalesced        int64 `json:"coalesced"`
	Degraded         int64 `json:"degraded"`
	AnytimeFallbacks int64 `json:"anytime_fallbacks"`
	// LastStopReason renders the most recent budget stop, if any.
	LastStopReason string `json:"last_stop_reason,omitempty"`
}

// FromStats projects one optimization's counters.
func FromStats(s core.Stats) *Search {
	out := &Search{
		Optimizations: 1,
		Groups:        int64(s.Groups),
		Exprs:         int64(s.Exprs),
		Merges:        int64(s.Merges),
		PeakMemoBytes: int64(s.PeakMemoBytes),

		MatchCalls:  int64(s.MatchCalls),
		Bindings:    int64(s.Bindings),
		RulesFired:  int64(s.RulesFired),
		MovesReused: int64(s.MovesReused),

		GoalsOptimized: int64(s.GoalsOptimized),
		AlgorithmMoves: int64(s.AlgorithmMoves),
		EnforcerMoves:  int64(s.EnforcerMoves),
		Pruned:         int64(s.Pruned),
		MovesSkipped:   int64(s.MovesSkipped),
		WinnerHits:     int64(s.WinnerHits),
		FailureHits:    int64(s.FailureHits),
		GoalsPruned:    int64(s.GoalsPruned),

		Episodes:       int64(s.Episodes),
		RolloutCommits: int64(s.RolloutCommits),

		SearchWorkers: int64(s.SearchWorkers),
		TasksRun:      int64(s.TasksRun),
		TasksParked:   int64(s.TasksParked),

		SharedGroups:  int64(s.SharedGroups),
		SharedWinners: int64(s.SharedWinners),

		LimitStages: int64(s.LimitStages),

		ConsistencyViolations: int64(s.ConsistencyViolations),
	}
	if s.SeedCost != nil {
		out.SeedCost = s.SeedCost.String()
	}
	if s.CacheHit {
		out.CacheHits = 1
	}
	if s.Coalesced {
		out.Coalesced = 1
	}
	if s.StopReason != nil {
		out.Degraded = 1
		out.LastStopReason = s.StopReason.Error()
	}
	if s.AnytimeFallback {
		out.AnytimeFallbacks = 1
	}
	return out
}

// Merge folds another projection into the receiver: counters sum,
// SearchWorkers keeps the maximum, and the string fields keep the most
// recent non-empty value.
func (a *Search) Merge(b *Search) {
	a.Optimizations += b.Optimizations
	a.Groups += b.Groups
	a.Exprs += b.Exprs
	a.Merges += b.Merges
	if b.PeakMemoBytes > a.PeakMemoBytes {
		a.PeakMemoBytes = b.PeakMemoBytes
	}
	a.MatchCalls += b.MatchCalls
	a.Bindings += b.Bindings
	a.RulesFired += b.RulesFired
	a.MovesReused += b.MovesReused
	a.GoalsOptimized += b.GoalsOptimized
	a.AlgorithmMoves += b.AlgorithmMoves
	a.EnforcerMoves += b.EnforcerMoves
	a.Pruned += b.Pruned
	a.MovesSkipped += b.MovesSkipped
	a.WinnerHits += b.WinnerHits
	a.FailureHits += b.FailureHits
	a.GoalsPruned += b.GoalsPruned
	a.Episodes += b.Episodes
	a.RolloutCommits += b.RolloutCommits
	if b.SearchWorkers > a.SearchWorkers {
		a.SearchWorkers = b.SearchWorkers
	}
	a.TasksRun += b.TasksRun
	a.TasksParked += b.TasksParked
	a.SharedGroups += b.SharedGroups
	a.SharedWinners += b.SharedWinners
	if b.SeedCost != "" {
		a.SeedCost = b.SeedCost
	}
	a.LimitStages += b.LimitStages
	a.ConsistencyViolations += b.ConsistencyViolations
	a.CacheHits += b.CacheHits
	a.Coalesced += b.Coalesced
	a.Degraded += b.Degraded
	a.AnytimeFallbacks += b.AnytimeFallbacks
	if b.LastStopReason != "" {
		a.LastStopReason = b.LastStopReason
	}
}

// Serve is the daemon's admission-control and latency section.
type Serve struct {
	// Capacity is the admission controller's concurrency limit;
	// Inflight is the number of requests currently admitted.
	Capacity int   `json:"capacity"`
	Inflight int64 `json:"inflight"`
	// Admitted counts requests that obtained a slot; DegradedAdmits
	// counts the subset admitted under pressure with a clamped
	// optimization budget; Shed counts requests refused with 503;
	// Canceled counts requests whose client went away mid-flight;
	// Errors counts statement failures (parse errors, execution
	// errors).
	Admitted       int64 `json:"admitted"`
	DegradedAdmits int64 `json:"degraded_admits"`
	Shed           int64 `json:"shed"`
	Canceled       int64 `json:"canceled"`
	Errors         int64 `json:"errors"`
	// Endpoints holds per-endpoint request latency, keyed by path.
	Endpoints map[string]*Endpoint `json:"endpoints,omitempty"`
}

// Endpoint is one endpoint's cumulative serving record.
type Endpoint struct {
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	Degraded  int64   `json:"degraded"`
	CacheHits int64   `json:"cache_hits"`
	Latency   Latency `json:"latency"`
}

// Format renders the snapshot as the aligned text block the repl's
// \stats command (and any operator hitting /metrics with curl | jq -r)
// shows. Sections follow the struct: search, cache, exec, serve.
func (s *Snapshot) Format() string {
	var b strings.Builder
	if v := s.Search; v != nil {
		fmt.Fprintf(&b, "search:    %d optimization(s)\n", v.Optimizations)
		fmt.Fprintf(&b, "memo:      %d classes, %d expressions, %d merges, peak %d bytes\n",
			v.Groups, v.Exprs, v.Merges, v.PeakMemoBytes)
		fmt.Fprintf(&b, "rules:     %d match calls, %d bindings, %d fired, %d moves reused\n",
			v.MatchCalls, v.Bindings, v.RulesFired, v.MovesReused)
		fmt.Fprintf(&b, "effort:    %d goals, %d steps (%d algorithm + %d enforcer), %d pruned, %d skipped\n",
			v.GoalsOptimized, v.AlgorithmMoves+v.EnforcerMoves, v.AlgorithmMoves, v.EnforcerMoves, v.Pruned, v.MovesSkipped)
		fmt.Fprintf(&b, "lookups:   %d winner hits, %d failure hits, %d goals failed in-limit\n",
			v.WinnerHits, v.FailureHits, v.GoalsPruned)
		fmt.Fprintf(&b, "engine:    %d workers, %d tasks run, %d tasks parked\n",
			v.SearchWorkers, v.TasksRun, v.TasksParked)
		fmt.Fprintf(&b, "sharing:   %d shared classes, %d shared winner nodes\n",
			v.SharedGroups, v.SharedWinners)
		if v.Episodes > 0 {
			fmt.Fprintf(&b, "policy:    %d episode(s), %d rollout commit(s)\n",
				v.Episodes, v.RolloutCommits)
		}
		if v.SeedCost != "" {
			fmt.Fprintf(&b, "guidance:  seed cost %s, %d limit stage(s)\n", v.SeedCost, v.LimitStages)
		}
		if v.ConsistencyViolations > 0 {
			fmt.Fprintf(&b, "CONSISTENCY VIOLATIONS: %d\n", v.ConsistencyViolations)
		}
		if v.CacheHits > 0 || v.Coalesced > 0 {
			fmt.Fprintf(&b, "served:    %d plan-cache hit(s), %d coalesced\n", v.CacheHits, v.Coalesced)
		}
		if v.Degraded > 0 {
			fmt.Fprintf(&b, "degraded:  %d budget stop(s), %d anytime fallback(s), last: %s\n",
				v.Degraded, v.AnytimeFallbacks, v.LastStopReason)
		}
	}
	if v := s.Cache; v != nil {
		fmt.Fprintf(&b, "cache:     %d hits, %d misses, %d coalesced, %d evictions\n",
			v.CacheHits, v.CacheMisses, v.Coalesced, v.Evictions)
		fmt.Fprintf(&b, "           %d entries, %d bytes resident\n", v.Entries, v.CacheBytes)
	}
	if v := s.Exec; v != nil {
		fmt.Fprintf(&b, "exec:      %d queries run, %d rows returned, %d errors\n",
			v.Queries, v.Rows, v.Errors)
	}
	if v := s.Serve; v != nil {
		fmt.Fprintf(&b, "serve:     %d/%d slots in use, %d admitted (%d degraded), %d shed, %d canceled, %d errors\n",
			v.Inflight, v.Capacity, v.Admitted, v.DegradedAdmits, v.Shed, v.Canceled, v.Errors)
		paths := make([]string, 0, len(v.Endpoints))
		for path := range v.Endpoints {
			paths = append(paths, path)
		}
		sort.Strings(paths)
		for _, path := range paths {
			e := v.Endpoints[path]
			fmt.Fprintf(&b, "  %-9s %d requests, p50 %dµs, p95 %dµs, p99 %dµs, max %dµs\n",
				path, e.Requests, e.Latency.P50US, e.Latency.P95US, e.Latency.P99US, e.Latency.MaxUS)
		}
	}
	return b.String()
}
