package metrics

import (
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func TestFromStatsAndMerge(t *testing.T) {
	a := FromStats(core.Stats{Groups: 3, Exprs: 10, MatchCalls: 7, CacheHit: true})
	b := FromStats(core.Stats{Groups: 2, Exprs: 4, MatchCalls: 5,
		StopReason: errors.New("step budget exhausted"), AnytimeFallback: true, PeakMemoBytes: 99})
	a.Merge(b)
	if a.Optimizations != 2 || a.Groups != 5 || a.Exprs != 14 || a.MatchCalls != 12 {
		t.Fatalf("merged counters: %+v", a)
	}
	if a.CacheHits != 1 || a.Degraded != 1 || a.AnytimeFallbacks != 1 {
		t.Fatalf("merged outcome counts: %+v", a)
	}
	if a.LastStopReason != "step budget exhausted" || a.PeakMemoBytes != 99 {
		t.Fatalf("merged extrema: %+v", a)
	}
}

// TestSnapshotJSONStable: the wire names downstream dashboards key on
// must not drift silently.
func TestSnapshotJSONStable(t *testing.T) {
	s := Snapshot{Search: FromStats(core.Stats{Groups: 1}), Serve: &Serve{
		Capacity:  4,
		Endpoints: map[string]*Endpoint{"/query": {Requests: 1}},
	}}
	data, err := json.Marshal(&s)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		`"search"`, `"optimizations"`, `"groups"`, `"match_calls"`,
		`"serve"`, `"capacity"`, `"endpoints"`, `"/query"`, `"latency"`, `"p99_us"`,
	} {
		if !strings.Contains(string(data), key) {
			t.Errorf("snapshot JSON lacks %s:\n%s", key, data)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	// Log buckets are coarse; accept the right power-of-two
	// neighborhood rather than exact values.
	if p50 := h.Quantile(0.50); p50 < 256*time.Microsecond || p50 > 1024*time.Microsecond {
		t.Errorf("p50 = %v", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 512*time.Microsecond || p99 > 2048*time.Microsecond {
		t.Errorf("p99 = %v", p99)
	}
	if max := h.Max(); max != time.Millisecond {
		t.Errorf("max = %v", max)
	}
	if mean := h.Mean(); mean < 400*time.Microsecond || mean > 600*time.Microsecond {
		t.Errorf("mean = %v", mean)
	}
}

// TestHistogramConcurrent: parallel observers under -race, and the
// aggregate count survives.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(g*i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Summary().MaxUS != 7*999 {
		t.Fatalf("max = %dµs", h.Summary().MaxUS)
	}
}
