// Command volcano-repl is an interactive shell over the demo database:
// type SQL, get optimized plans and rows. Meta commands:
//
//	\tables            list tables and statistics
//	\explain SELECT …  show the plan without executing
//	\memo SELECT …     show the memo after optimizing
//	\batch S1; S2; …   optimize and run statements over one shared memo
//	\stats             show the last optimization's full counters
//	\cache             show plan-cache counters
//	\workers N         set intra-query search workers (1 = sequential)
//	\policy NAME       set the search policy (exhaustive, mcts, widening)
//	\seed N            regenerate the database with a new seed
//	\quit
//
// \batch runs the multi-query path: the statements share one memo, and
// subplans common to several of them may be spooled once (Materialize)
// and rescanned (Reuse) when the cost model says that wins; \stats
// afterwards shows the sharing counters.
//
// Repeated queries are served from a fingerprint-keyed plan cache
// (-cache-size bytes; 0 disables), so only the first occurrence of a
// query shape pays for optimization.
//
// The database is the Figure-4 workload schema (tables R1..Rn with
// columns id, ja, jb, v), generated in memory — or, with -data DIR, a
// directory of <table>.csv files (integer values, header line naming
// the columns; statistics are gathered while loading).
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/metrics"
	"repro/internal/rel"
	"repro/internal/relopt"
	"repro/internal/sqlish"
	"repro/internal/vdb"
)

func main() {
	seed := flag.Int64("seed", 1, "demo database seed")
	tables := flag.Int("tables", 4, "number of demo tables")
	limit := flag.Int("limit", 10, "rows displayed per query")
	dataDir := flag.String("data", "", "directory of <table>.csv files to load instead of the demo database")
	guided := flag.Bool("guided", false, "seed branch-and-bound with the greedy join-ordering plan")
	trace := flag.Bool("trace", false, "print search-trace events (winners, failures, violations)")
	timeout := flag.Duration("timeout", 0, "per-query optimization wall-clock budget (0 = unbounded)")
	maxSteps := flag.Int("max-steps", 0, "per-query optimization step budget in moves pursued (0 = unbounded)")
	cacheSize := flag.Int64("cache-size", 64<<20, "plan-cache budget in bytes (0 disables the cache)")
	searchWorkers := flag.Int("search-workers", 0, "intra-query search workers (0 or 1 = sequential engine)")
	searchPolicy := flag.String("search-policy", "exhaustive", "search policy: exhaustive, mcts, or widening")
	randSeed := flag.Int64("rand-seed", 0, "stochastic policy RNG seed (0 = fixed default; runs are deterministic either way)")
	episodes := flag.Int("episodes", 0, "stochastic policy episode count (0 = default)")
	batchSize := flag.Int("batch-size", 0, "executor rows per batch (0 = default, 1 = row-at-a-time)")
	execWorkers := flag.Int("exec-workers", 0, "exchange producer goroutines (0 = one per partition)")
	columnar := flag.Bool("columnar", false, "execute with vectorized columnar kernels where the plan allows")
	flag.Parse()

	pol, err := core.ParseSearchPolicy(*searchPolicy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "volcano-repl:", err)
		os.Exit(2)
	}

	budget := core.Budget{Timeout: *timeout, MaxSteps: *maxSteps}
	r := &repl{limit: *limit, tables: *tables, guided: *guided, trace: *trace, budget: budget,
		cacheBytes: *cacheSize, workers: *searchWorkers, dataDir: *dataDir,
		policy: pol, randSeed: *randSeed, episodes: *episodes,
		batchSize: *batchSize, execWorkers: *execWorkers, columnar: *columnar}
	if *dataDir != "" {
		if err := r.openDir(); err != nil {
			fmt.Fprintln(os.Stderr, "volcano-repl:", err)
			os.Exit(1)
		}
	} else {
		r.reset(*seed)
	}

	fmt.Println("volcano-repl — SQL over a Volcano-optimized demo database")
	fmt.Println(`type \tables to inspect the schema, \quit to leave`)
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("volcano> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line != "" && !r.dispatch(line) {
			return
		}
		fmt.Print("volcano> ")
	}
}

type repl struct {
	db         *vdb.DB
	cat        *rel.Catalog
	seed       int64
	tables     int
	limit      int
	guided     bool
	trace      bool
	budget     core.Budget
	cacheBytes int64
	workers    int
	dataDir    string
	policy     core.SearchPolicy
	randSeed   int64
	episodes   int

	batchSize   int
	execWorkers int
	columnar    bool

	// last holds the most recent optimization's counters, for \stats.
	last *core.Stats
}

// options assembles the database options from the repl's flags.
func (r *repl) options() *vdb.Options {
	opts := &vdb.Options{Guided: r.guided, CacheBytes: r.cacheBytes}
	opts.Search.Budget = r.budget
	opts.Search.Search.Workers = r.workers
	opts.Search.Search.Policy = r.policy
	opts.Search.Search.RandSeed = r.randSeed
	opts.Search.Search.Episodes = r.episodes
	opts.Exec.BatchSize = r.batchSize
	opts.Exec.ExchangeWorkers = r.execWorkers
	opts.Exec.Columnar = r.columnar
	if r.trace {
		opts.Search.Trace.Tracer = core.ClassicTracer(func(line string) {
			fmt.Printf("  trace: %s\n", line)
		})
	}
	return opts
}

// openDir (re)opens the CSV-backed database with the current options.
func (r *repl) openDir() error {
	db, err := vdb.OpenDir(r.dataDir, r.options())
	if err != nil {
		return err
	}
	r.db, r.cat = db, db.Catalog()
	return nil
}

// reopen rebuilds the database so option changes (like \workers) take
// effect; the plan cache starts empty afterwards.
func (r *repl) reopen() error {
	if r.dataDir != "" {
		return r.openDir()
	}
	r.reset(r.seed)
	return nil
}

func (r *repl) reset(seed int64) {
	src := datagen.New(seed)
	r.cat = src.Catalog(r.tables)
	r.db = vdb.Open(r.cat, src.Rows(r.cat), r.options())
	r.seed = seed
}

// dispatch handles one input line; it reports false to exit.
func (r *repl) dispatch(line string) bool {
	switch {
	case line == `\quit` || line == `\q`:
		return false

	case line == `\tables`:
		for _, name := range r.cat.Tables() {
			t := r.cat.Table(name)
			fmt.Printf("%-4s %6d rows × %d B\n", name, t.Rows, t.RowBytes)
			for _, c := range t.Columns {
				m := r.cat.Column(c)
				fmt.Printf("     %-4s distinct=%-6d domain=[%d,%d]\n", m.Name, m.Distinct, m.Min, m.Max)
			}
		}

	case strings.HasPrefix(line, `\seed `):
		n, err := strconv.ParseInt(strings.TrimSpace(strings.TrimPrefix(line, `\seed `)), 10, 64)
		if err != nil {
			fmt.Println("usage: \\seed N")
			break
		}
		r.reset(n)
		fmt.Printf("database regenerated with seed %d\n", n)

	case strings.HasPrefix(line, `\explain `):
		res, err := r.db.ExplainCtx(context.Background(), strings.TrimPrefix(line, `\explain `))
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		r.last = &res.Stats
		fmt.Print(res.PlanText)

	case strings.HasPrefix(line, `\memo `):
		r.memo(strings.TrimPrefix(line, `\memo `))

	case line == `\workers`:
		if r.workers > 1 {
			fmt.Printf("intra-query search workers: %d\n", r.workers)
		} else {
			fmt.Println("intra-query search workers: 1 (sequential engine)")
		}

	case strings.HasPrefix(line, `\workers `):
		n, err := strconv.Atoi(strings.TrimSpace(strings.TrimPrefix(line, `\workers `)))
		if err != nil || n < 0 {
			fmt.Println("usage: \\workers N  (N >= 0; 0 or 1 = sequential engine)")
			break
		}
		r.workers = n
		if err := r.reopen(); err != nil {
			fmt.Println("error:", err)
			break
		}
		if n > 1 {
			fmt.Printf("intra-query search workers set to %d (plan cache cleared)\n", n)
		} else {
			fmt.Println("sequential engine restored (plan cache cleared)")
		}

	case line == `\policy`:
		fmt.Printf("search policy: %v\n", r.policy)

	case strings.HasPrefix(line, `\policy `):
		pol, err := core.ParseSearchPolicy(strings.TrimSpace(strings.TrimPrefix(line, `\policy `)))
		if err != nil {
			fmt.Println("error:", err)
			break
		}
		r.policy = pol
		if err := r.reopen(); err != nil {
			fmt.Println("error:", err)
			break
		}
		fmt.Printf("search policy set to %v (plan cache cleared)\n", pol)

	case strings.HasPrefix(line, `\batch `):
		r.batch(strings.TrimPrefix(line, `\batch `))

	case line == `\stats`:
		r.stats()

	case line == `\cache`:
		c := r.db.PlanCache()
		if c == nil {
			fmt.Println("plan cache disabled (-cache-size 0)")
			break
		}
		ct := c.Counters()
		fmt.Printf("plan cache: %d hits, %d misses, %d coalesced, %d evictions\n",
			ct.CacheHits, ct.CacheMisses, ct.Coalesced, ct.Evictions)
		fmt.Printf("            %d entries, %d bytes resident\n", ct.Entries, ct.CacheBytes)

	case strings.HasPrefix(line, `\`):
		fmt.Println("unknown command; available: \\tables \\explain \\memo \\batch \\stats \\cache \\workers \\policy \\seed \\quit")

	default:
		r.query(line)
	}
	return true
}

func (r *repl) memo(sql string) {
	st, err := sqlish.Parse(r.cat, sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	model := relopt.New(r.cat, relopt.DefaultConfig())
	opts := &core.Options{Budget: r.budget}
	opts.Search.Workers = r.workers
	opts.Search.Policy = r.policy
	opts.Search.RandSeed = r.randSeed
	opts.Search.Episodes = r.episodes
	if r.guided {
		opts.Guidance.SeedPlanner = model.SeedPlanner()
	}
	opt := core.NewOptimizer(model, opts)
	root := opt.InsertQuery(st.Tree)
	if _, err := opt.Optimize(root, st.Required); err != nil {
		// A budget stop still leaves a well-formed (partial) memo and
		// meaningful counters; only hard errors abandon the command.
		if !errors.Is(err, core.ErrBudget) {
			fmt.Println("error:", err)
			return
		}
		fmt.Printf("budget exhausted (%v); showing the partial memo\n", err)
	}
	r.last = opt.Stats()
	fmt.Print(opt.Memo().Format())
}

// batch optimizes semicolon-separated statements over one shared memo
// and executes them against a batch-shared spool store.
func (r *repl) batch(input string) {
	var sqls []string
	for _, s := range strings.Split(input, ";") {
		if s = strings.TrimSpace(s); s != "" {
			sqls = append(sqls, s)
		}
	}
	if len(sqls) == 0 {
		fmt.Println("usage: \\batch SELECT …; SELECT …")
		return
	}
	res, err := r.db.QueryBatch(sqls)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	r.last = &res.Stats
	for i, q := range res.Results {
		fmt.Printf("-- statement %d: %s\n", i+1, sqls[i])
		fmt.Print(q.Plan.Format())
		fmt.Printf("%d rows\n", len(q.Rows))
	}
	fmt.Printf("batch: %d statements, %d shared classes, %d shared winner nodes, %d subplans spooled\n",
		len(res.Results), res.Stats.SharedGroups, res.Stats.SharedWinners, res.Spools)
}

// stats prints the last optimization's counters plus the session's
// cache and executor totals, through the same metrics.Snapshot schema
// the volcano-serve /metrics endpoint renders.
func (r *repl) stats() {
	if r.last == nil {
		fmt.Println("no optimization has run yet")
		return
	}
	snap := metrics.Snapshot{Search: metrics.FromStats(*r.last)}
	if c := r.db.PlanCache(); c != nil {
		counters := c.Counters()
		snap.Cache = &counters
	}
	execCounters := r.db.ExecCounters()
	snap.Exec = &execCounters
	fmt.Print(snap.Format())
}

func (r *repl) query(sql string) {
	res, err := r.db.Query(sql)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	r.last = &res.Stats
	fmt.Print(res.Plan.Format())
	fmt.Printf("(%s)\n", strings.Join(res.Columns, ", "))
	for i, row := range res.Rows {
		if i >= r.limit {
			fmt.Printf("... %d more rows\n", len(res.Rows)-r.limit)
			break
		}
		fmt.Println(row)
	}
	fmt.Printf("%d rows; %d classes, %d expressions explored\n",
		len(res.Rows), res.Stats.Groups, res.Stats.Exprs)
	if res.Stats.CacheHit {
		fmt.Println("plan served from cache")
	}
	if res.Degraded {
		fmt.Printf("degraded: %v after %d steps; ran best plan found\n",
			res.StopReason, res.Stats.Steps())
	}
	if r.guided {
		if res.Stats.SeedCost == nil {
			fmt.Println("guided: seed planner declined; search ran unguided")
		} else {
			fmt.Printf("guided: seed cost %v, final cost %v, %d limit stage(s)\n",
				res.Stats.SeedCost, res.Plan.Cost, res.Stats.LimitStages)
		}
	}
}
