// Command volcano-gen is the optimizer generator: it translates a data
// model specification into Go source code for an optimizer package that
// links against the search engine (internal/core), following the
// paper's generator paradigm.
//
// Usage:
//
//	volcano-gen -spec model.model [-o optimizer.go]
//
// The generated package declares a Support interface for the
// implementor-supplied functions the specification references; see
// internal/gen/testdata/minirel.model for a worked specification and
// internal/gen/minirel for its generated output.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gen"
)

func main() {
	spec := flag.String("spec", "", "model specification file")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()
	if *spec == "" {
		fmt.Fprintln(os.Stderr, "volcano-gen: -spec is required")
		flag.Usage()
		os.Exit(2)
	}
	input, err := os.ReadFile(*spec)
	if err != nil {
		fatal(err)
	}
	parsed, err := gen.Parse(string(input))
	if err != nil {
		fatal(err)
	}
	src, err := gen.Generate(parsed)
	if err != nil {
		fatal(err)
	}
	if *out == "" {
		os.Stdout.Write(src)
		return
	}
	if err := os.WriteFile(*out, src, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "volcano-gen:", err)
	os.Exit(1)
}
