// Command volcano-gen is the optimizer generator: it translates a data
// model specification into Go source code for an optimizer package that
// links against the search engine (internal/core), following the
// paper's generator paradigm.
//
// Usage:
//
//	volcano-gen -spec model.model [-o optimizer.go] [-timeout 10s]
//
// The generated package declares a Support interface for the
// implementor-supplied functions the specification references; see
// internal/gen/testdata/minirel.model for a worked specification and
// internal/gen/minirel for its generated output. Generated models also
// carry a Version token (a fingerprint of the generated rule set, mixed
// with the support code's own token when it implements core.Versioned)
// so plan caches stop serving entries from regenerated optimizers.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/gen"
)

func main() {
	spec := flag.String("spec", "", "model specification file")
	out := flag.String("o", "", "output file (default stdout)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for parsing and generation (0 = unbounded)")
	searchWorkers := flag.Int("search-workers", 0, "recommended intra-query search workers, recorded in the generated source (0 = omit)")
	flag.Parse()
	if *spec == "" {
		fmt.Fprintln(os.Stderr, "volcano-gen: -spec is required")
		flag.Usage()
		os.Exit(2)
	}
	if *searchWorkers < 0 {
		fmt.Fprintln(os.Stderr, "volcano-gen: -search-workers must be non-negative")
		os.Exit(2)
	}
	input, err := os.ReadFile(*spec)
	if err != nil {
		fatal(err)
	}
	src, err := generate(string(input), *timeout)
	if err != nil {
		fatal(err)
	}
	if *searchWorkers > 1 {
		// The generated optimizer honors Options.Search.Workers at run
		// time; record the model author's recommendation where users of
		// the package will see it.
		src = append(src, []byte(fmt.Sprintf(
			"\n// Recommended search configuration for this model:\n//\n"+
				"//\topts := &core.Options{}\n"+
				"//\topts.Search.Workers = %d // intra-query parallel search\n", *searchWorkers))...)
	}
	if *out == "" {
		os.Stdout.Write(src)
		return
	}
	if err := os.WriteFile(*out, src, 0o644); err != nil {
		fatal(err)
	}
}

// generate parses the specification and emits the optimizer source,
// guarded by an optional wall-clock budget: a pathological specification
// (deeply nested patterns blow up rule elaboration) aborts with an error
// instead of hanging the build that invoked the generator.
func generate(input string, timeout time.Duration) ([]byte, error) {
	type result struct {
		src []byte
		err error
	}
	if timeout <= 0 {
		parsed, err := gen.Parse(input)
		if err != nil {
			return nil, err
		}
		return gen.Generate(parsed)
	}
	done := make(chan result, 1)
	go func() {
		parsed, err := gen.Parse(input)
		if err != nil {
			done <- result{nil, err}
			return
		}
		src, err := gen.Generate(parsed)
		done <- result{src, err}
	}()
	select {
	case r := <-done:
		return r.src, r.err
	case <-time.After(timeout):
		return nil, fmt.Errorf("generation exceeded the %v budget", timeout)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "volcano-gen:", err)
	os.Exit(1)
}
