// Command volcano-explain optimizes (and optionally executes) ad-hoc
// queries against a generated demo database, printing the chosen plan
// with costs and delivered physical properties — an EXPLAIN for the
// Volcano optimizer.
//
//	volcano-explain "SELECT R1.id FROM R1, R2 WHERE R1.ja = R2.ja ORDER BY R1.id"
//	volcano-explain -run "SELECT ja, COUNT(*) FROM R1 GROUP BY ja"
//	volcano-explain -baseline -trace "SELECT ..."
//
// The demo catalog holds eight tables R1..R8 with columns id, ja, jb, v
// (the Figure-4 workload schema); -tables and -seed regenerate it.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/exec"
	"repro/internal/exodus"
	"repro/internal/plancache"
	"repro/internal/rel"
	"repro/internal/relopt"
	"repro/internal/sqlish"
)

func main() {
	seed := flag.Int64("seed", 1, "demo database seed")
	tables := flag.Int("tables", 8, "number of demo tables")
	run := flag.Bool("run", false, "execute the plan and print up to -limit rows")
	limit := flag.Int("limit", 10, "rows to print with -run")
	trace := flag.Bool("trace", false, "print search-trace events (winners, failures, violations)")
	traceAll := flag.Bool("trace-all", false, "print every structured search-trace event")
	baseline := flag.Bool("baseline", false, "also optimize with the EXODUS-style baseline")
	stats := flag.Bool("stats", false, "print search statistics")
	guided := flag.Bool("guided", false, "seed branch-and-bound with the greedy join-ordering plan")
	memo := flag.Bool("memo", false, "dump the memo (classes, expressions, winners)")
	dot := flag.Bool("dot", false, "print the plan as a Graphviz digraph")
	timeout := flag.Duration("timeout", 0, "optimization wall-clock budget (0 = unbounded); on exhaustion the best plan found is printed")
	maxSteps := flag.Int("max-steps", 0, "optimization step budget in moves pursued (0 = unbounded)")
	cacheSize := flag.Int64("cache-size", 0, "plan-cache budget in bytes; >0 replays the query through the plan cache and reports the verified-hit latency")
	searchWorkers := flag.Int("search-workers", 0, "intra-query search workers (0 or 1 = sequential engine)")
	searchPolicy := flag.String("search-policy", "exhaustive", "search policy: exhaustive, mcts, or widening")
	randSeed := flag.Int64("rand-seed", 0, "stochastic policy RNG seed (0 = fixed default; runs are deterministic either way)")
	episodes := flag.Int("episodes", 0, "stochastic policy episode count (0 = default)")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: volcano-explain [flags] \"SELECT ...\"")
		flag.Usage()
		os.Exit(2)
	}
	sql := flag.Arg(0)

	src := datagen.New(*seed)
	cat := src.Catalog(*tables)

	st, err := sqlish.Parse(cat, sql)
	if err != nil {
		fatal(err)
	}

	opts := &core.Options{}
	emit := func(line string) { fmt.Printf("  trace: %s\n", line) }
	switch {
	case *traceAll:
		opts.Trace.Tracer = core.TextTracer(emit)
	case *trace:
		opts.Trace.Tracer = core.ClassicTracer(emit)
	}
	opts.Budget.Timeout = *timeout
	opts.Budget.MaxSteps = *maxSteps
	opts.Search.Workers = *searchWorkers
	pol, err := core.ParseSearchPolicy(*searchPolicy)
	if err != nil {
		fatal(err)
	}
	opts.Search.Policy = pol
	opts.Search.RandSeed = *randSeed
	opts.Search.Episodes = *episodes
	model := relopt.New(cat, relopt.DefaultConfig())
	if *guided {
		opts.Guidance.SeedPlanner = model.SeedPlanner()
	}
	opt := core.NewOptimizer(model, opts)
	root := opt.InsertQuery(st.Tree)
	var required core.PhysProps
	if st.Required != nil {
		required = st.Required
	}
	start := time.Now()
	plan, err := opt.Optimize(root, required)
	elapsed := time.Since(start)
	degraded := false
	if err != nil {
		if plan == nil || !errors.Is(err, core.ErrBudget) {
			fatal(err)
		}
		degraded = true
	}
	if plan == nil {
		fatal(fmt.Errorf("no plan satisfies the query requirements"))
	}

	fmt.Printf("optimized in %v (%d classes, %d expressions)\n\n",
		elapsed, opt.Stats().Groups, opt.Stats().Exprs)
	if s := opt.Stats(); s.SearchWorkers > 1 {
		fmt.Printf("parallel search: %d workers, %d tasks run, %d parked\n\n",
			s.SearchWorkers, s.TasksRun, s.TasksParked)
	}
	if degraded {
		fmt.Printf("-- degraded: %v after %d steps; best plan found:\n", err, opt.Stats().Steps())
	}
	fmt.Print(plan.Format())
	if *guided {
		s := opt.Stats()
		if s.SeedCost == nil {
			fmt.Printf("\nguided: seed planner declined; search ran unguided\n")
		} else {
			fmt.Printf("\nguided: seed cost %v, final cost %v, %d limit stage(s), %d goals pruned, %d moves skipped\n",
				s.SeedCost, plan.Cost, s.LimitStages, s.GoalsPruned, s.MovesSkipped)
		}
	}
	if *stats {
		fmt.Printf("\nsearch statistics: %+v\n", *opt.Stats())
	}
	if *memo {
		fmt.Printf("\nmemo:\n%s", opt.Memo().Format())
	}
	if *dot {
		fmt.Printf("\n%s", plan.Dot())
	}

	if *cacheSize > 0 && !degraded {
		cache := plancache.New(plancache.Options{MaxBytes: *cacheSize})
		fp, canon := core.FingerprintQuery(model, st.Tree, required)
		cache.Put(fp, canon, &plancache.Entry{Plan: plan, Cost: plan.Cost, Stats: *opt.Stats()})
		wStart := time.Now()
		wfp, wcanon := core.FingerprintQuery(model, st.Tree, required)
		e, ok := cache.Get(wfp, wcanon)
		wElapsed := time.Since(wStart)
		if !ok {
			fatal(fmt.Errorf("plan cache replay missed"))
		}
		if e.Cost != plan.Cost {
			fatal(fmt.Errorf("plan cache replay cost %v differs from fresh cost %v", e.Cost, plan.Cost))
		}
		fmt.Printf("\nplan cache: fingerprint %s, verified hit in %v (cold optimization took %v)\n",
			fp, wElapsed, elapsed)
	}

	if *baseline {
		ex := exodus.New(cat, exodus.Config{Timeout: 30 * time.Second})
		var sortCol rel.ColID
		if st.Required != nil && len(st.Required.Sort) > 0 {
			sortCol = st.Required.Sort[0].Col
		}
		bStart := time.Now()
		node, cost, err := ex.Optimize(st.Tree, sortCol)
		bElapsed := time.Since(bStart)
		if err != nil {
			fmt.Printf("\nEXODUS baseline: aborted (%v)\n", err)
		} else {
			fmt.Printf("\nEXODUS baseline: %s, estimated cost %s (vs %s) in %v\n",
				node.Alg, cost, plan.Cost, bElapsed)
		}
	}

	if *run {
		db := exec.FromData(cat, src.Rows(cat))
		rows, schema, err := exec.Run(db, plan)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\n%d rows", len(rows))
		names := make([]string, 0, len(schema.Cols))
		for _, c := range schema.Cols {
			if c == rel.InvalidCol {
				names = append(names, "agg")
				continue
			}
			names = append(names, cat.Column(c).Qualified())
		}
		fmt.Printf("  (%s)\n", strings.Join(names, ", "))
		for i, r := range rows {
			if i >= *limit {
				fmt.Printf("... %d more\n", len(rows)-*limit)
				break
			}
			fmt.Println(" ", r)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "volcano-explain:", err)
	os.Exit(1)
}
