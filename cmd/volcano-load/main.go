// Command volcano-load drives an open-loop load run against a
// volcano-serve daemon and reports latency quantiles, throughput,
// degraded-plan rate, cache-hit rate, and shed counts as JSON.
//
//	volcano-load -addr 127.0.0.1:8080 -rate 500 -duration 10s
//
// Before the measured run it executes every workload statement once
// against the (presumed unloaded) daemon to collect reference row
// fingerprints; any loaded response whose row multiset diverges counts
// as a mismatch and fails the run (exit 1). The workload mix matches
// the daemon's generated schema: chain equi-joins over R1..Rn with
// selection, ordering, aggregate, and parameterized variants (-n must
// not exceed the daemon's table count).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/load"
)

func main() {
	var (
		addr           = flag.String("addr", "127.0.0.1:8080", "daemon address (host:port or URL)")
		rate           = flag.Float64("rate", 200, "open-loop arrival rate, requests/second")
		duration       = flag.Duration("duration", 10*time.Second, "measured run length")
		n              = flag.Int("n", 8, "workload joins span tables R1..Rn")
		statements     = flag.Int("statements", 16, "distinct statements in the workload mix")
		timeoutMS      = flag.Int64("timeout-ms", 0, "per-request deadline sent to the daemon (0 = server default)")
		maxOutstanding = flag.Int("max-outstanding", 0, "in-flight request cap (0 = 512)")
	)
	flag.Parse()

	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	workload := load.ChainWorkload(*n, *statements)

	ref, err := load.Collect(context.Background(), base, nil, workload)
	if err != nil {
		fmt.Fprintf(os.Stderr, "volcano-load: %v\n", err)
		os.Exit(1)
	}

	rep, err := load.Run(context.Background(), load.Options{
		BaseURL:        base,
		Rate:           *rate,
		Duration:       *duration,
		MaxOutstanding: *maxOutstanding,
		Workload:       workload,
		Reference:      ref,
		TimeoutMS:      *timeoutMS,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "volcano-load: %v\n", err)
		os.Exit(1)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	enc.Encode(rep)
	if rep.Mismatches > 0 {
		fmt.Fprintf(os.Stderr, "volcano-load: %d result mismatches under load\n", rep.Mismatches)
		os.Exit(1)
	}
}
