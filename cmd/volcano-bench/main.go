// Command volcano-bench regenerates the paper's evaluation and the
// repository's ablation experiments:
//
//	volcano-bench -experiment fig4       # Figure 4: Volcano vs EXODUS
//	volcano-bench -experiment fig4guided # guided B&B vs exhaustive A/B
//	volcano-bench -experiment fig4par    # worker-pool throughput sweep
//	volcano-bench -experiment fig4spar   # intra-query parallel search A/B
//	volcano-bench -experiment fig4cache  # plan-cache hit vs cold latency
//	volcano-bench -experiment fig4mqo    # shared-memo multi-query optimization
//	volcano-bench -experiment fig4mcts   # stochastic policies vs guided B&B at 10-16 relations
//	volcano-bench -experiment e2e        # optimize-and-execute engine A/B
//	volcano-bench -experiment serve      # serving tier under open-loop load
//	volcano-bench -experiment ablation   # pruning / failure memo / glue mode
//	volcano-bench -experiment altprops  # alternative input property combinations
//	volcano-bench -experiment memory    # < 1 MB work space claim
//	volcano-bench -experiment anytime   # graceful degradation under budgets
//	volcano-bench -experiment all
//
// The anytime experiment sweeps shrinking optimization budgets over the
// hardest queries (override with -timeout / -max-steps to test a single
// budget) and exits non-zero if any budget-stopped search violates the
// anytime contract — that is, fails to return a complete plan with the
// required properties costing no more than the greedy seed.
//
// Flags tune the workload; defaults follow the paper (50 random
// select-join queries per complexity level, 2-8 input relations, tables
// of 1,200-7,200 records of 100 bytes).
//
// The fig4spar experiment A/B-tests intra-query parallel search
// (Options.Search.Workers) against the sequential engine on the hardest
// queries and exits non-zero if any parallel plan cost diverges from the
// sequential optimum. -cpuprofile and -memprofile write pprof profiles
// of whatever experiment runs.
//
// The e2e experiment optimizes AND executes workloads over generated
// tables of -rows rows each, A/B-ing the row-at-a-time engine against
// the batched engine (-batch-size), the columnar engine (vectorized
// kernels over per-column batches), and the batched engine behind a
// parallel exchange at degrees 2, 4, and 8 (-exec-workers caps the
// producer goroutines). It exits non-zero if any engine's result
// multiset diverges from the row-engine baseline. -seed pins the
// generated dataset (default 1993), so a recorded run is reproducible
// bit-for-bit; the seed used is recorded in the JSON report's e2e
// section.
//
// The fig4mqo experiment optimizes an overlapping batch of queries over
// one shared memo (core.ParallelOptimizeCtx with Search.ShareMemo),
// applies the cost-based Materialize/Reuse post-pass, and executes the
// rewritten plans against generated tables of -rows rows. It exits
// non-zero if any plan cost with sharing disabled diverges from
// independent optimization, or if any shared-batch result multiset
// diverges from independent execution.
//
// The serve experiment starts an in-process volcano-serve daemon over
// generated tables (-serve-rows each), measures an unloaded open-loop
// run, then offers roughly twice the tier's estimated capacity for
// -serve-duration to exercise admission control, budget degradation,
// and shedding. Every completed response is checked against reference
// row fingerprints collected before any load; the experiment exits
// non-zero on any mismatch.
//
// The fig4mcts experiment maps the quality-vs-time frontier of the
// budgeted stochastic search policies (MCTS and iterative widening)
// against guided branch-and-bound under shared step budgets on 10-16
// relation queries (-mcts-levels, -mcts-steps, -queries tune the grid;
// it is not part of -experiment all because the default grid is
// expensive). It exits non-zero if any returned plan violates the
// anytime contract or if a stochastic policy's mean plan cost exceeds
// 1.5x guided branch-and-bound in any cell. Results land in the JSON
// report's quality section.
//
// The fig4 experiment additionally writes a machine-readable report
// (default BENCH_fig4.json; -json "" disables) so per-level optimization
// time, plan cost, memo size, and search-effort counters can be tracked
// across commits.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/fig4"
)

func main() {
	experiment := flag.String("experiment", "fig4", "fig4 | fig4guided | fig4par | fig4spar | fig4cache | fig4mqo | fig4mcts | e2e | serve | ablation | altprops | leftdeep | heuristic | setops | memory | anytime | all")
	queries := flag.Int("queries", 50, "queries per complexity level")
	seed := flag.Int64("seed", 1993, "workload seed")
	minRels := flag.Int("min-rels", 2, "smallest number of input relations")
	maxRels := flag.Int("max-rels", 8, "largest number of input relations")
	shape := flag.String("shape", "random", "join graph shape: random | chain | star")
	timeout := flag.Duration("exodus-timeout", 30*time.Second, "per-query EXODUS time budget")
	maxNodes := flag.Int("exodus-max-nodes", 1<<20, "EXODUS MESH node budget")
	workers := flag.Int("workers", 0, "fig4par worker-pool size (0 = GOMAXPROCS)")
	cacheBytes := flag.Int64("cache-size", 0, "fig4cache plan-cache budget in bytes (0 = cache default)")
	optTimeout := flag.Duration("timeout", 0, "anytime per-query wall-clock budget (0 = sweep defaults)")
	optSteps := flag.Int("max-steps", 0, "anytime per-query step budget in moves pursued (0 = sweep defaults)")
	searchWorkers := flag.Int("search-workers", 0, "intra-query search workers for fig4spar (0 = sweep 2,4,8)")
	e2eRows := flag.Int64("rows", 1_000_000, "e2e target rows per generated table")
	serveRows := flag.Int64("serve-rows", 5000, "serve experiment rows per generated table")
	serveDuration := flag.Duration("serve-duration", 3*time.Second, "serve experiment length per phase")
	batchSize := flag.Int("batch-size", 0, "e2e executor rows per batch (0 = default)")
	execWorkers := flag.Int("exec-workers", 0, "e2e exchange producer goroutines (0 = one per partition)")
	mctsLevels := flag.String("mcts-levels", "", "fig4mcts comma-separated relation counts (empty = 10,12,14,16)")
	mctsSteps := flag.String("mcts-steps", "", "fig4mcts comma-separated step budgets (empty = 300,1000,3000,10000)")
	jsonPath := flag.String("json", "BENCH_fig4.json", "machine-readable fig4 report path (empty = skip)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "volcano-bench: creating %s: %v\n", *cpuProfile, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "volcano-bench: starting CPU profile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "volcano-bench: creating %s: %v\n", *memProfile, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "volcano-bench: writing heap profile: %v\n", err)
			}
		}()
	}

	var sh datagen.Shape
	switch *shape {
	case "random":
		sh = datagen.ShapeRandom
	case "chain":
		sh = datagen.ShapeChain
	case "star":
		sh = datagen.ShapeStar
	default:
		fmt.Fprintf(os.Stderr, "volcano-bench: unknown shape %q\n", *shape)
		os.Exit(2)
	}
	cfg := fig4.Config{
		Seed:            *seed,
		QueriesPerLevel: *queries,
		MinRelations:    *minRels,
		MaxRelations:    *maxRels,
		Shape:           sh,
		ExodusMaxNodes:  *maxNodes,
		ExodusTimeout:   *timeout,
	}

	// The fig4, fig4par, and fig4cache results feed one combined JSON
	// report, written after all requested experiments have run.
	var fig4Points []fig4.Point
	var fig4Sweep *fig4.Sweep
	var fig4Cache *fig4.CacheResult
	var fig4Spar *fig4.SparResult
	var fig4E2E *fig4.E2EResult
	var fig4MQO *fig4.MQOResult
	var fig4Serve *fig4.ServeResult
	var fig4Quality *fig4.QualityResult

	run := func(name string) {
		switch name {
		case "fig4":
			fig4Points = fig4.Run(cfg)
			fmt.Print(fig4.Format(fig4Points))
		case "fig4guided":
			fmt.Print(fig4.FormatGuided(fig4.RunGuided(cfg)))
		case "fig4par":
			sweep := fig4.RunVolcanoSweep(cfg, *workers)
			fig4Sweep = &sweep
			fmt.Print(fig4.FormatSweep(sweep))
		case "fig4spar":
			var counts []int
			if *searchWorkers > 0 {
				counts = []int{*searchWorkers}
			}
			spar := fig4.RunSpar(cfg, counts)
			fig4Spar = &spar
			fmt.Print(fig4.FormatSpar(spar))
			if spar.CostMismatches > 0 {
				fmt.Fprintf(os.Stderr, "volcano-bench: %d parallel-search plans diverged from sequential costs\n", spar.CostMismatches)
				os.Exit(1)
			}
		case "e2e":
			e2e := fig4.RunE2E(cfg, *e2eRows, *batchSize, *execWorkers, nil)
			fig4E2E = &e2e
			fmt.Print(fig4.FormatE2E(e2e))
			if e2e.Mismatches > 0 {
				fmt.Fprintf(os.Stderr, "volcano-bench: %d executed results diverged from the row-engine baseline\n", e2e.Mismatches)
				os.Exit(1)
			}
		case "fig4mqo":
			mqo := fig4.RunMQO(cfg, *e2eRows, *searchWorkers)
			fig4MQO = &mqo
			fmt.Print(fig4.FormatMQO(mqo))
			if mqo.CostMismatches > 0 {
				fmt.Fprintf(os.Stderr, "volcano-bench: %d no-sharing batch plans diverged from independent optimization costs\n", mqo.CostMismatches)
				os.Exit(1)
			}
			if mqo.Mismatches > 0 {
				fmt.Fprintf(os.Stderr, "volcano-bench: %d shared-batch results diverged from independent execution\n", mqo.Mismatches)
				os.Exit(1)
			}
		case "serve":
			res, err := fig4.RunServe(fig4.ServeConfig{
				Seed:     *seed,
				Rows:     *serveRows,
				Duration: *serveDuration,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "volcano-bench: serve: %v\n", err)
				os.Exit(1)
			}
			fig4Serve = &res
			fmt.Print(fig4.FormatServe(res))
			if res.Mismatches > 0 {
				fmt.Fprintf(os.Stderr, "volcano-bench: %d loaded-server results diverged from the unloaded reference\n", res.Mismatches)
				os.Exit(1)
			}
		case "fig4cache":
			fig4Cache = fig4.RunCache(fig4.CacheConfig{
				Seed:            *seed,
				QueriesPerLevel: *queries,
				MinRelations:    *minRels,
				MaxRelations:    *maxRels,
				Shape:           sh,
				CacheBytes:      *cacheBytes,
			})
			fmt.Print(fig4.FormatCache(fig4Cache))
			if fig4Cache.Mismatches > 0 {
				fmt.Fprintf(os.Stderr, "volcano-bench: %d cache-served plans diverged from fresh optimization costs\n", fig4Cache.Mismatches)
				os.Exit(1)
			}
		case "fig4mcts":
			levels, err := parseIntList(*mctsLevels)
			if err != nil {
				fmt.Fprintf(os.Stderr, "volcano-bench: -mcts-levels: %v\n", err)
				os.Exit(2)
			}
			steps, err := parseIntList(*mctsSteps)
			if err != nil {
				fmt.Fprintf(os.Stderr, "volcano-bench: -mcts-steps: %v\n", err)
				os.Exit(2)
			}
			fig4Quality = fig4.RunMCTS(cfg, levels, steps)
			fmt.Print(fig4.FormatMCTS(fig4Quality))
			if fig4Quality.VetFailures > 0 {
				fmt.Fprintf(os.Stderr, "volcano-bench: %d stochastic-policy plans violated the anytime contract\n", fig4Quality.VetFailures)
				os.Exit(1)
			}
			for _, p := range fig4Quality.Points {
				if p.MCTSVsGuided > 1.5 || p.WideningVsGuided > 1.5 {
					fmt.Fprintf(os.Stderr, "volcano-bench: stochastic plan cost exceeded 1.5x guided B&B at %d relations / %d steps (mcts %.3fx, widening %.3fx)\n",
						p.Relations, p.MaxSteps, p.MCTSVsGuided, p.WideningVsGuided)
					os.Exit(1)
				}
			}
		case "ablation":
			fmt.Print(fig4.FormatAblation(fig4.RunAblation(cfg)))
		case "altprops":
			fmt.Print(fig4.FormatAltProps(fig4.RunAltProps()))
		case "leftdeep":
			fmt.Print(fig4.FormatLeftDeep(fig4.RunLeftDeep(cfg)))
		case "heuristic":
			fmt.Print(fig4.FormatHeuristic(fig4.RunHeuristic(cfg)))
		case "setops":
			fmt.Print(fig4.FormatSetOps(fig4.RunSetOps()))
		case "anytime":
			budgets := []core.Budget{
				{Timeout: 50 * time.Millisecond},
				{Timeout: 5 * time.Millisecond},
				{Timeout: 500 * time.Microsecond},
				{MaxSteps: 1000},
				{MaxSteps: 100},
				{MaxSteps: 10},
			}
			if *optTimeout > 0 || *optSteps > 0 {
				budgets = []core.Budget{{Timeout: *optTimeout, MaxSteps: *optSteps}}
			}
			points := fig4.RunAnytime(cfg, budgets)
			fmt.Print(fig4.FormatAnytime(points))
			for _, p := range points {
				if p.Invalid > 0 {
					fmt.Fprintf(os.Stderr, "volcano-bench: %d budget-stopped searches violated the anytime contract\n", p.Invalid)
					os.Exit(1)
				}
			}
		case "memory":
			points := fig4.Run(cfg)
			fmt.Println("Peak optimizer work space (mean per query)")
			fmt.Printf("%-5s %12s %12s\n", "rels", "volcano", "exodus")
			for _, p := range points {
				fmt.Printf("%-5d %11dB %11dB\n", p.Relations, p.VolcanoMemBytes, p.ExodusMemBytes)
			}
			fmt.Println("(the paper reports Volcano within 1 MB for every test query)")
		default:
			fmt.Fprintf(os.Stderr, "volcano-bench: unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Println()
	}

	if *experiment == "all" {
		for _, name := range []string{"fig4", "fig4guided", "fig4par", "fig4spar", "fig4cache", "fig4mqo", "e2e", "serve", "ablation", "altprops", "leftdeep", "heuristic", "setops", "memory", "anytime"} {
			run(name)
		}
	} else {
		run(*experiment)
	}

	if *jsonPath != "" && (fig4Points != nil || fig4Sweep != nil || fig4Cache != nil || fig4Spar != nil || fig4E2E != nil || fig4MQO != nil || fig4Serve != nil || fig4Quality != nil) {
		rep := fig4.NewBenchReport(cfg, fig4Points, fig4Sweep)
		rep.Cache = fig4Cache
		rep.Spar = fig4Spar
		rep.E2E = fig4E2E
		rep.MQO = fig4MQO
		rep.Serve = fig4Serve
		rep.Quality = fig4Quality
		// Keep the sections of experiments this invocation did not rerun,
		// and merge rerun levels into the existing per-level curve.
		if old, err := fig4.ReadBenchJSON(*jsonPath); err == nil {
			if fig4Points == nil && old.Points != nil {
				rep.Points, rep.Config = old.Points, old.Config
			} else if fig4Points != nil && old.Points != nil {
				rep.Points = fig4.MergeBenchPoints(old.Points, rep.Points)
				if n := len(rep.Points); n > 0 {
					rep.Config.MinRelations = rep.Points[0].Relations
					rep.Config.MaxRelations = rep.Points[n-1].Relations
				}
			}
			if fig4Sweep == nil {
				rep.Parallel = old.Parallel
			}
			if fig4Cache == nil {
				rep.Cache = old.Cache
			}
			if fig4Spar == nil {
				rep.Spar = old.Spar
			}
			if fig4E2E == nil {
				rep.E2E = old.E2E
			}
			if fig4MQO == nil {
				rep.MQO = old.MQO
			}
			if fig4Serve == nil {
				rep.Serve = old.Serve
			}
			if fig4Quality == nil {
				rep.Quality = old.Quality
			}
		}
		if err := fig4.WriteBenchJSON(*jsonPath, rep); err != nil {
			fmt.Fprintf(os.Stderr, "volcano-bench: writing %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("(wrote %s)\n", *jsonPath)
	}
}

// parseIntList parses a comma-separated list of positive integers; an
// empty string yields nil (the experiment's defaults).
func parseIntList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad entry %q (want positive integers)", part)
		}
		out = append(out, n)
	}
	return out, nil
}
