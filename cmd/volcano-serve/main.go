// Command volcano-serve runs the network serving tier: an HTTP/JSON
// daemon over a generated demo database, with per-request deadlines,
// admission control, and overload degradation (see internal/serve).
//
//	volcano-serve -addr 127.0.0.1:8080 -n 8 -rows 10000
//
// Endpoints (all POST, JSON bodies; see internal/serve.Request):
//
//	/query    {"sql": "...", "params": [..], "timeout_ms": 500}
//	/explain  {"sql": "..."}
//	/prepare  {"sql": "..."}
//	/batch    {"statements": ["...", "..."]}
//	/metrics  GET — one JSON snapshot of search, cache, exec, and
//	          admission counters plus per-endpoint latency quantiles
//	/healthz  GET
//
// -addr-file writes the bound address to a file once listening, so
// harnesses can use "-addr 127.0.0.1:0" and discover the chosen port.
// SIGINT/SIGTERM drain in-flight requests before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/serve"
	"repro/internal/vdb"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address (port 0 picks one)")
		addrFile   = flag.String("addr-file", "", "write the bound address to this file once listening")
		n          = flag.Int("n", 8, "number of generated tables R1..Rn")
		rows       = flag.Int64("rows", 1000, "rows per generated table")
		seed       = flag.Int64("seed", 42, "data generator seed")
		cacheBytes = flag.Int64("cache-bytes", 4<<20, "plan cache budget in bytes (0 disables)")

		maxConcurrent  = flag.Int("max-concurrent", 0, "admission slots (0 = 4×GOMAXPROCS)")
		queueTimeout   = flag.Duration("queue-timeout", 0, "bounded admission wait (0 = 25ms)")
		degradeFrac    = flag.Float64("degrade-frac", 0, "inflight fraction at which admits degrade (0 = 0.75)")
		defaultTimeout = flag.Duration("default-timeout", 0, "per-request deadline when the client sends none (0 = 2s)")
		degradedPol    = flag.String("degraded-policy", "exhaustive", "search policy for degraded admits: exhaustive, mcts, or widening")
	)
	flag.Parse()

	pol, err := core.ParseSearchPolicy(*degradedPol)
	if err != nil {
		fmt.Fprintf(os.Stderr, "volcano-serve: %v\n", err)
		os.Exit(2)
	}

	src := datagen.New(*seed)
	cat := src.ScaledCatalog(*n, *rows)
	db := vdb.Open(cat, src.Rows(cat), &vdb.Options{
		Guided:     true,
		CacheBytes: *cacheBytes,
	})
	s := serve.New(db, &serve.Config{
		MaxConcurrent:  *maxConcurrent,
		QueueTimeout:   *queueTimeout,
		DegradeFrac:    *degradeFrac,
		DefaultTimeout: *defaultTimeout,
		DegradedPolicy: pol,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "volcano-serve: %v\n", err)
		os.Exit(1)
	}
	bound := l.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound+"\n"), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "volcano-serve: %v\n", err)
			os.Exit(1)
		}
	}
	cfg := s.Config()
	fmt.Printf("volcano-serve: listening on %s (%d tables × %d rows, %d slots, degrade at %.0f%%)\n",
		bound, *n, *rows, cfg.MaxConcurrent, 100*cfg.DegradeFrac)

	done := make(chan error, 1)
	go func() { done <- s.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		if err != nil {
			fmt.Fprintf(os.Stderr, "volcano-serve: %v\n", err)
			os.Exit(1)
		}
	case <-sig:
		fmt.Println("volcano-serve: draining")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "volcano-serve: shutdown: %v\n", err)
			os.Exit(1)
		}
		<-done
	}
	snap := s.Metrics()
	if v := snap.Serve; v != nil {
		fmt.Printf("volcano-serve: served %d (%d degraded), shed %d, %d errors\n",
			v.Admitted, v.DegradedAdmits, v.Shed, v.Errors)
	}
}
